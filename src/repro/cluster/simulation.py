"""Simulators for the non-dedicated cluster model.

Three simulation back-ends are provided, in increasing order of generality:

``DiscreteTimeSimulator``
    A faithful unit-by-unit walk of the paper's discrete-time model: a task
    executes one unit of work, then the owner requests the CPU with
    probability ``P`` and, if it does, runs for ``O`` units.  This is the
    closest analogue of the authors' CSIM validation model and is used in the
    tests to cross-check the other back-ends (it is exact but slow).

``MonteCarloSampler``
    A vectorised sampler exploiting the model's closed form: the number of
    interruptions per task is ``Binomial(T, P)``, so task and job times can be
    drawn directly with numpy.  Statistically identical to the discrete-time
    walk but orders of magnitude faster; this is the production back-end for
    the simulation-validation experiment (20 batches x 1000 samples).

``EventDrivenClusterSimulator``
    A full process-oriented simulation on :mod:`repro.desim` with explicit
    workstations, continuously cycling owners and preemptive CPUs.  It relaxes
    the analytical model's optimistic assumptions (owner idle when the task
    arrives, deterministic owner demands, at most one request per unit of
    work) and therefore supports the paper's "future work" ablations:
    owner-demand variance and task imbalance.

``OpenSystemSimulator``
    The event-driven cluster under a *stream* of parallel jobs
    (:class:`~repro.core.params.JobArrivalSpec`): jobs arrive over time,
    queue for admission and compete for the same non-dedicated stations.
    Where the closed back-ends estimate standalone job time, this one
    estimates steady-state queueing metrics — response time, slowdown,
    throughput, utilization — with warmup truncation and batch means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Literal, Sequence

import numpy as np

from ..core.analytical import evaluate_inputs
from ..core.params import (
    STATIC_POLICY,
    JobArrivalSpec,
    ModelInputs,
    OwnerSpec,
    ScenarioSpec,
    request_probability_to_utilization,
)
from ..desim import Environment, Interrupt, Resource, StreamRegistry, make_variate
from ..stats import (
    BatchMeansResult,
    batch_means_interval,
    steady_state_interval,
    summarize_replications,
    warmup_truncate,
)
from .job import JobResult, OpenJobRecord, balanced_tasks, imbalanced_tasks
from .owner import OwnerBehavior
from .policies import make_policy
from .workstation import Workstation

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "OpenSystemResult",
    "simulate_task_discrete",
    "DiscreteTimeSimulator",
    "MonteCarloSampler",
    "EventDrivenClusterSimulator",
    "OpenSystemSimulator",
    "run_simulation",
    "validate_against_analysis",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration shared by all cluster-simulation back-ends.

    Without a ``scenario``, this is the paper's homogeneous model (every
    workstation shares ``owner``, the static one-task-per-station discipline)
    and the config acts as a thin convenience constructor over
    :class:`~repro.core.params.ScenarioSpec` — :attr:`effective_scenario`
    builds the equivalent ``W``-identical-stations scenario, and the back-ends
    consume only that.  Passing an explicit
    :class:`~repro.core.params.ScenarioSpec` unlocks heterogeneous owners and
    non-static scheduling policies on the same back-ends.

    Attributes
    ----------
    workstations:
        Number of workstations ``W`` (must match the scenario, if given).
    task_demand:
        Per-task demand ``T`` in time units.
    owner:
        Analytical owner spec (demand ``O`` plus utilization / ``P``).  With a
        heterogeneous scenario this is only the representative (first)
        station's owner; reporting uses the scenario's per-station specs.
    num_jobs:
        Number of job completions to sample.  The paper uses
        20 batches x 1000 samples = 20 000.
    num_batches:
        Batches for the batch-means confidence interval (paper: 20).
    confidence:
        Confidence level for the interval (paper: 0.90).
    seed:
        Seed for the reproducible random streams.
    owner_demand_kind:
        Distribution family for the owner demand in the event-driven backend
        ("deterministic", "exponential", "hyperexponential", ...).
    owner_demand_kwargs:
        Extra parameters for the demand distribution (e.g. ``squared_cv``).
    imbalance:
        Relative task-demand imbalance for the event-driven backend
        (0 = perfectly balanced, the paper's assumption).
    scenario:
        Optional generalized scenario (per-station owners, scheduling
        policy).  ``None`` means the homogeneous scenario implied by the
        fields above.
    """

    workstations: int
    task_demand: float
    owner: OwnerSpec
    num_jobs: int = 2000
    num_batches: int = 20
    confidence: float = 0.90
    seed: int = 0
    owner_demand_kind: str = "deterministic"
    owner_demand_kwargs: dict = field(default_factory=dict)
    imbalance: float = 0.0
    scenario: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        if self.workstations < 1:
            raise ValueError(f"workstations must be >= 1, got {self.workstations!r}")
        if self.task_demand <= 0:
            raise ValueError(f"task_demand must be positive, got {self.task_demand!r}")
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs!r}")
        if self.num_batches < 2:
            raise ValueError(f"num_batches must be >= 2, got {self.num_batches!r}")
        if self.num_jobs < self.num_batches and not (
            self.scenario is not None and self.scenario.is_open
        ):
            # Closed back-ends always form a batch-means CI over num_jobs
            # observations; the open-system backend degrades to a point
            # estimate (interval = None) instead, so a short job stream —
            # e.g. the single-arrival reduction scenario — stays expressible.
            raise ValueError(
                f"num_jobs ({self.num_jobs}) must be >= num_batches "
                f"({self.num_batches})"
            )
        if not 0.0 <= self.imbalance < 1.0:
            raise ValueError(f"imbalance must be in [0, 1), got {self.imbalance!r}")
        if self.scenario is not None:
            if self.scenario.workstations != self.workstations:
                raise ValueError(
                    f"scenario has {self.scenario.workstations} stations but "
                    f"workstations={self.workstations}; build the config via "
                    "SimulationConfig.from_scenario to keep them in sync"
                )
            if self.imbalance != self.scenario.imbalance:
                if self.imbalance != 0.0:
                    raise ValueError(
                        f"conflicting imbalance: config says {self.imbalance!r}, "
                        f"scenario says {self.scenario.imbalance!r}"
                    )
                object.__setattr__(self, "imbalance", self.scenario.imbalance)

    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioSpec,
        task_demand: float,
        *,
        num_jobs: int = 2000,
        num_batches: int = 20,
        confidence: float = 0.90,
        seed: int = 0,
    ) -> "SimulationConfig":
        """Build a config around an explicit scenario.

        The legacy homogeneous fields are filled from the scenario's first
        station so rendering helpers keep working; the back-ends read the
        scenario itself.
        """
        first = scenario.stations[0]
        return cls(
            workstations=scenario.workstations,
            task_demand=task_demand,
            owner=first.owner,
            num_jobs=num_jobs,
            num_batches=num_batches,
            confidence=confidence,
            seed=seed,
            owner_demand_kind=first.demand_kind,
            owner_demand_kwargs=dict(first.demand_kwargs),
            imbalance=scenario.imbalance,
            scenario=scenario,
        )

    @property
    def effective_scenario(self) -> ScenarioSpec:
        """The scenario the back-ends execute.

        Either the explicit :attr:`scenario`, or the homogeneous
        ``W``-identical-stations scenario implied by the legacy fields.
        """
        if self.scenario is not None:
            return self.scenario
        return ScenarioSpec.homogeneous(
            self.workstations,
            self.owner,
            demand_kind=self.owner_demand_kind,
            demand_kwargs=self.owner_demand_kwargs,
            policy=STATIC_POLICY,
            imbalance=self.imbalance,
        )

    @property
    def job_demand(self) -> float:
        """Total job demand ``J = T * W``."""
        return self.task_demand * self.workstations

    @property
    def nominal_owner_utilization(self) -> float:
        """Nominal owner utilization ``U`` used for reporting and metrics.

        For a heterogeneous scenario this is the cluster-average utilization
        (the convention of the analytical extension in
        :mod:`repro.core.heterogeneous`); for the homogeneous case it is the
        owner's ``U``, derived via Eq. 8 when the spec was given as a request
        probability so a probability-specified owner is never silently
        treated as ``U = 0``.
        """
        if self.scenario is not None and not self.scenario.is_homogeneous:
            return self.scenario.mean_utilization
        if self.owner.utilization is not None:
            return float(self.owner.utilization)
        assert self.owner.request_probability is not None
        return request_probability_to_utilization(
            self.owner.request_probability, self.owner.demand
        )

    @property
    def model_inputs(self) -> ModelInputs:
        """The analytical-model inputs corresponding to this configuration.

        Only defined for homogeneous scenarios — the paper's closed forms
        take a single ``(O, P)`` pair.  Heterogeneous scenarios are evaluated
        against :mod:`repro.core.heterogeneous` instead.
        """
        if self.scenario is not None and not self.scenario.is_homogeneous:
            raise ValueError(
                "model_inputs is only defined for homogeneous scenarios; use "
                "repro.core.heterogeneous for per-station owner specs"
            )
        assert self.owner.request_probability is not None
        return ModelInputs(
            task_demand=self.task_demand,
            workstations=self.workstations,
            owner_demand=self.owner.demand,
            request_probability=self.owner.request_probability,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Estimates produced by one simulation run."""

    config: SimulationConfig
    mode: str
    job_times: np.ndarray
    task_times: np.ndarray
    job_time_interval: BatchMeansResult
    measured_owner_utilization: float | None = None

    @property
    def mean_job_time(self) -> float:
        """Point estimate of ``E_j``."""
        return float(np.mean(self.job_times))

    @property
    def mean_task_time(self) -> float:
        """Point estimate of ``E_t``."""
        return float(np.mean(self.task_times))

    @property
    def num_jobs(self) -> int:
        return int(self.job_times.size)

    def speedup(self) -> float:
        """Measured speedup ``J / mean job time``."""
        return self.config.job_demand / self.mean_job_time

    def weighted_efficiency(self) -> float:
        """Measured weighted efficiency.

        Uses the owner utilization the simulation actually experienced: the
        event-driven backend reports a measured value, which is preferred;
        otherwise the nominal ``U`` is derived from the owner spec (via Eq. 8
        when the spec was given as a request probability, so a
        probability-specified owner is never silently treated as ``U = 0``).
        """
        u = (
            self.measured_owner_utilization
            if self.measured_owner_utilization is not None
            else self.config.nominal_owner_utilization
        )
        return self.config.job_demand / (
            (1.0 - u) * self.mean_job_time * self.config.workstations
        )

    def summary(self) -> str:
        ci = self.job_time_interval.interval
        scenario = self.config.effective_scenario
        extras = ""
        if not scenario.is_homogeneous:
            extras += f" U_max={scenario.max_utilization:.3f}"
        if scenario.policy != STATIC_POLICY:
            extras += f" policy={scenario.policy}"
        return (
            f"[{self.mode}] W={self.config.workstations} T={self.config.task_demand} "
            f"U={self.config.nominal_owner_utilization:.3f}{extras}: "
            f"E_t≈{self.mean_task_time:.2f}, E_j≈{self.mean_job_time:.2f} "
            f"± {ci.half_width:.2f} ({ci.confidence:.0%} CI, "
            f"{self.num_jobs} jobs)"
        )


def _static_scenario(config: SimulationConfig, mode: str) -> ScenarioSpec:
    """Resolve a config's scenario for a model-faithful (discrete) backend.

    The discrete-time walk and the Monte-Carlo sampler implement the paper's
    closed-form model, which has no notion of work redistribution — only the
    static one-task-per-station policy is expressible.  (Per-station *owners*
    are fine: the model's job time is the max of independent, not necessarily
    identically distributed, task times.)  As with the homogeneous config,
    these back-ends use each owner's mean demand; ``demand_kind`` shapes only
    the event-driven backend.
    """
    scenario = config.effective_scenario
    if scenario.policy != STATIC_POLICY:
        raise ValueError(
            f"the {mode} backend models the paper's static one-task-per-"
            f"station discipline; scheduling policy {scenario.policy!r} "
            "requires the event-driven backend"
        )
    _reject_open_scenario(scenario, mode)
    return scenario


def _split_demands(
    total_demand: float,
    scenario: ScenarioSpec,
    workstations: int,
    placement_rng: np.random.Generator,
) -> np.ndarray:
    """Per-station task demands of one job under the scenario's placement.

    Shared by the closed and open event-driven back-ends — the bitwise
    open-to-closed reduction relies on both splitting jobs identically.
    """
    if scenario.imbalance == 0.0:
        return balanced_tasks(total_demand, workstations)
    return imbalanced_tasks(
        total_demand, workstations, scenario.imbalance, placement_rng
    )


def _reject_open_scenario(scenario: ScenarioSpec, mode: str) -> None:
    """Refuse to run an open (job-stream) scenario on a closed backend."""
    if scenario.is_open:
        raise ValueError(
            f"the {mode} backend runs the paper's closed system (one job at a "
            "time); a scenario with a job-arrival process requires the "
            "'open-system' mode"
        )


def _integral_task_demand(task_demand: float, mode: str) -> int:
    """Validate that a discrete backend received an integer task demand.

    The discrete-time walk and the Monte-Carlo sampler treat ``T`` as the
    binomial trial count, so a fractional demand cannot be honoured — and
    silently rounding it (to 0 in the worst case) distorts results without
    warning.  The event-driven backend and the analytical closed forms accept
    fractional ``T``; use those (or :class:`~repro.core.params.TaskRounding`)
    for non-integral demands.
    """
    if float(task_demand) != int(task_demand):
        raise ValueError(
            f"the {mode} backend requires an integral task_demand (it is the "
            f"binomial trial count), got {task_demand!r}; round it explicitly "
            "via TaskRounding or use the event-driven backend"
        )
    return int(task_demand)


def simulate_task_discrete(
    task_demand: int,
    owner_demand: float,
    request_probability: float,
    rng: np.random.Generator,
) -> tuple[float, int]:
    """Unit-by-unit discrete-time walk of one task (the paper's model, literally).

    The task performs ``task_demand`` units of work; after each unit the owner
    requests the CPU with probability ``P`` and, if so, runs ``O`` units while
    the task is suspended.  Returns ``(task_time, interruptions)``.
    """
    if int(task_demand) != task_demand or task_demand < 1:
        raise ValueError(f"task_demand must be a positive integer, got {task_demand!r}")
    time = 0.0
    interruptions = 0
    for _ in range(int(task_demand)):
        time += 1.0
        if request_probability > 0.0 and rng.random() < request_probability:
            time += owner_demand
            interruptions += 1
    return time, interruptions


class DiscreteTimeSimulator:
    """Faithful (slow) discrete-time simulation of the paper's model."""

    mode = "discrete-time"

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._streams = StreamRegistry(config.seed)

    def run(self) -> SimulationResult:
        """Simulate ``num_jobs`` independent jobs and return the estimates."""
        cfg = self.config
        scenario = _static_scenario(cfg, self.mode)
        probabilities = [station.request_probability for station in scenario.stations]
        demands = [station.owner.demand for station in scenario.stations]
        rng = self._streams.stream("discrete-time")
        t = _integral_task_demand(cfg.task_demand, self.mode)
        job_times = np.empty(cfg.num_jobs, dtype=np.float64)
        task_times = np.empty((cfg.num_jobs, cfg.workstations), dtype=np.float64)
        for j in range(cfg.num_jobs):
            for w in range(cfg.workstations):
                task_time, _ = simulate_task_discrete(
                    t, demands[w], probabilities[w], rng
                )
                task_times[j, w] = task_time
            job_times[j] = task_times[j].max()
        return SimulationResult(
            config=cfg,
            mode=self.mode,
            job_times=job_times,
            task_times=task_times.ravel(),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
        )


class MonteCarloSampler:
    """Vectorised direct sampler of the analytical model's closed form."""

    mode = "monte-carlo"

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._streams = StreamRegistry(config.seed)

    def sample_interruptions(self, num_jobs: int | None = None) -> np.ndarray:
        """Sample the per-task interruption counts, shape ``(num_jobs, W)``.

        Station ``w``'s count is ``Binomial(T, P_w)``; for a homogeneous
        scenario all stations share one ``P`` and the draw is bit-for-bit the
        classic homogeneous sample (numpy consumes the stream identically for
        a scalar and an equal-valued vector ``p``).
        """
        cfg = self.config
        scenario = _static_scenario(cfg, self.mode)
        probabilities = np.array(
            [station.request_probability for station in scenario.stations]
        )
        rng = self._streams.stream("monte-carlo")
        n = num_jobs if num_jobs is not None else cfg.num_jobs
        t = _integral_task_demand(cfg.task_demand, self.mode)
        return rng.binomial(t, probabilities, size=(n, cfg.workstations))

    def run(self) -> SimulationResult:
        """Sample ``num_jobs`` jobs and return the estimates."""
        cfg = self.config
        scenario = _static_scenario(cfg, self.mode)
        owner_demands = np.array(
            [station.owner.demand for station in scenario.stations]
        )
        t = _integral_task_demand(cfg.task_demand, self.mode)
        interruptions = self.sample_interruptions()
        task_times = t + interruptions * owner_demands
        job_times = task_times.max(axis=1).astype(np.float64)
        return SimulationResult(
            config=cfg,
            mode=self.mode,
            job_times=job_times,
            task_times=task_times.ravel().astype(np.float64),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
        )

    @classmethod
    def run_batch(
        cls,
        configs: Sequence[SimulationConfig],
        seed: int | None = None,
    ) -> list[SimulationResult]:
        """Sample several configs sharing one ``(W, T)`` cell in a single draw.

        A utilization sweep evaluates the same ``(W, T, num_jobs)`` grid cell
        under ``k`` different owner request probabilities; this path stacks
        those probabilities and draws the full ``(k, num_jobs, W)`` binomial
        interruption tensor in one vectorised numpy call instead of ``k``
        separate sampler runs.  Heterogeneous (static-policy) scenarios
        batch too: each config contributes its per-station probability row.
        Statistically identical to per-config :meth:`run` calls but *not*
        bitwise (the batch shares a single stream seeded from ``seed``,
        default: the first config's seed).
        """
        if not configs:
            return []
        first = configs[0]
        t = _integral_task_demand(first.task_demand, cls.mode)
        for cfg in configs[1:]:
            if (
                cfg.workstations != first.workstations
                or float(cfg.task_demand) != float(first.task_demand)
                or cfg.num_jobs != first.num_jobs
                or cfg.num_batches != first.num_batches
                or cfg.confidence != first.confidence
            ):
                raise ValueError(
                    "run_batch requires configs sharing workstations, "
                    "task_demand, num_jobs, num_batches and confidence; "
                    f"got {cfg!r} vs {first!r}"
                )
        streams = StreamRegistry(seed if seed is not None else first.seed)
        rng = streams.stream("monte-carlo-batch")
        workstations = first.workstations
        probabilities = np.empty((len(configs), 1, workstations), dtype=np.float64)
        demands = np.empty((len(configs), 1, workstations), dtype=np.float64)
        for i, cfg in enumerate(configs):
            scenario = _static_scenario(cfg, cls.mode)
            probabilities[i, 0, :] = [
                station.request_probability for station in scenario.stations
            ]
            demands[i, 0, :] = [
                station.owner.demand for station in scenario.stations
            ]
        interruptions = rng.binomial(
            t,
            probabilities,
            size=(len(configs), first.num_jobs, first.workstations),
        )
        task_times = t + interruptions * demands
        results: list[SimulationResult] = []
        for i, cfg in enumerate(configs):
            job_times = task_times[i].max(axis=1).astype(np.float64)
            results.append(
                SimulationResult(
                    config=cfg,
                    mode=cls.mode,
                    job_times=job_times,
                    task_times=task_times[i].ravel().astype(np.float64),
                    job_time_interval=batch_means_interval(
                        job_times, cfg.num_batches, cfg.confidence
                    ),
                )
            )
        return results


class EventDrivenClusterSimulator:
    """Full process-oriented simulation with explicit workstations and owners.

    Unlike the two model-faithful back-ends above, owners here cycle
    continuously (they may be mid-service when a task arrives), owner demands
    may follow any variate, and the task split may be imbalanced.  This is the
    back-end used by the ablation experiments.
    """

    mode = "event-driven"

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._streams = StreamRegistry(config.seed)

    def _build_cluster(self, env: Environment) -> list[Workstation]:
        stations = []
        for w, spec in enumerate(self.config.effective_scenario.stations):
            behavior = OwnerBehavior.from_spec(
                spec.owner, spec.demand_kind, **dict(spec.demand_kwargs)
            )
            station = Workstation(
                env, w, behavior, self._streams.stream(f"owner-{w}")
            )
            station.start_owner()
            stations.append(station)
        return stations

    def run(self) -> SimulationResult:
        """Run ``num_jobs`` back-to-back jobs on a persistent cluster."""
        cfg = self.config
        scenario = cfg.effective_scenario
        _reject_open_scenario(scenario, self.mode)
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        env = Environment()
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")

        job_times = np.empty(cfg.num_jobs, dtype=np.float64)
        task_times: list[float] = []
        results: list[JobResult] = []

        def run_one_job(job_id: int):
            start = env.now
            demands = _split_demands(
                cfg.job_demand, scenario, cfg.workstations, placement_rng
            )
            tasks = yield from policy.run_job(env, stations, demands)
            results.append(JobResult(job_id=job_id, start_time=start, tasks=tasks))

        def driver():
            for job_id in range(cfg.num_jobs):
                yield env.process(run_one_job(job_id))

        driver_proc = env.process(driver())
        # Owners cycle forever, so run only until the driver has finished all jobs.
        env.run(until=driver_proc)

        for i, job in enumerate(results):
            job_times[i] = job.response_time
            task_times.extend(task.execution_time for task in job.tasks)

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return SimulationResult(
            config=cfg,
            mode=self.mode,
            job_times=job_times,
            task_times=np.asarray(task_times, dtype=np.float64),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
            measured_owner_utilization=measured_util,
        )


@dataclass(frozen=True)
class OpenSystemResult:
    """Steady-state queueing estimates of one open-system (job-stream) run.

    The raw per-job records are kept as parallel arrays in *arrival order*
    (so the result round-trips through the NPZ cache); every queueing metric
    is derived, with response times taken in *completion* order and the
    warmup prefix truncated per the arrival spec before steady-state
    statistics are formed.

    Space-shared (job-class) streams additionally carry per-job ``widths``,
    ``class_ids`` and ``restarts`` arrays; classless streams leave them
    ``None``, meaning every job spanned the whole cluster as class 0 with no
    admission preemptions.
    """

    config: SimulationConfig
    mode: str
    arrival_times: np.ndarray
    start_times: np.ndarray
    end_times: np.ndarray
    demands: np.ndarray
    measured_owner_utilization: float | None = None
    widths: np.ndarray | None = None
    class_ids: np.ndarray | None = None
    restarts: np.ndarray | None = None

    @property
    def arrival_spec(self) -> JobArrivalSpec:
        spec = self.config.effective_scenario.arrivals
        assert spec is not None
        return spec

    @property
    def num_jobs(self) -> int:
        return int(self.arrival_times.size)

    @cached_property
    def job_widths(self) -> np.ndarray:
        """Per-job station widths (whole cluster for classless streams)."""
        if self.widths is not None:
            return self.widths
        return np.full(self.num_jobs, float(self.config.workstations))

    @cached_property
    def job_class_ids(self) -> np.ndarray:
        """Per-job class indices (all zero for classless streams)."""
        if self.class_ids is not None:
            return self.class_ids
        return np.zeros(self.num_jobs, dtype=np.float64)

    @cached_property
    def job_restarts(self) -> np.ndarray:
        """Per-job admission-preemption counts (zero for classless streams)."""
        if self.restarts is not None:
            return self.restarts
        return np.zeros(self.num_jobs, dtype=np.float64)

    @cached_property
    def completion_order(self) -> np.ndarray:
        """Indices of the jobs sorted by completion time (stable for ties)."""
        return np.argsort(self.end_times, kind="stable")

    @cached_property
    def response_times(self) -> np.ndarray:
        """Arrival-to-completion times, in completion order."""
        order = self.completion_order
        return (self.end_times - self.arrival_times)[order]

    @cached_property
    def wait_times(self) -> np.ndarray:
        """Admission-queue waiting times, in completion order."""
        order = self.completion_order
        return (self.start_times - self.arrival_times)[order]

    @cached_property
    def service_times(self) -> np.ndarray:
        """On-cluster makespans (the closed-system job times), in completion order."""
        order = self.completion_order
        return (self.end_times - self.start_times)[order]

    @cached_property
    def slowdowns(self) -> np.ndarray:
        """Per-job slowdown: response time over the ideal dedicated makespan.

        The ideal reference is ``demand / width`` — the job's makespan on its
        *own* stations, dedicated and perfectly balanced (``width = W`` for
        classless streams) — so a slowdown of 1 means the job saw neither
        queueing delay nor owner interference.
        """
        order = self.completion_order
        ideal = (self.demands / self.job_widths)[order]
        return (self.end_times - self.arrival_times)[order] / ideal

    @cached_property
    def warmup_jobs(self) -> int:
        """How many earliest-completed jobs the warmup truncation discards."""
        return self.num_jobs - warmup_truncate(
            self.response_times, self.arrival_spec.warmup_fraction
        ).size

    @cached_property
    def steady_response_times(self) -> np.ndarray:
        """Post-warmup response times (the batch-means input)."""
        return warmup_truncate(
            self.response_times, self.arrival_spec.warmup_fraction
        )

    @cached_property
    def response_time_interval(self) -> BatchMeansResult | None:
        """Batch-means CI over the post-warmup response times.

        ``None`` when fewer post-warmup completions than batches exist (e.g.
        the single-arrival reduction scenario).
        """
        return steady_state_interval(
            self.response_times,
            self.arrival_spec.warmup_fraction,
            self.config.num_batches,
            self.config.confidence,
        )

    # -- scalar queueing metrics ------------------------------------------

    @property
    def mean_response_time(self) -> float:
        return float(np.mean(self.steady_response_times))

    @property
    def p95_response_time(self) -> float:
        return float(np.percentile(self.steady_response_times, 95.0))

    @property
    def p99_response_time(self) -> float:
        return float(np.percentile(self.steady_response_times, 99.0))

    @property
    def max_response_time(self) -> float:
        return float(np.max(self.steady_response_times))

    @property
    def total_admission_preemptions(self) -> float:
        """Total kill-and-requeue evictions across the run (0 unless the
        priority admission policy runs preemptively)."""
        return float(np.sum(self.job_restarts))

    @property
    def mean_wait_time(self) -> float:
        return float(
            np.mean(
                warmup_truncate(self.wait_times, self.arrival_spec.warmup_fraction)
            )
        )

    @property
    def mean_slowdown(self) -> float:
        return float(
            np.mean(
                warmup_truncate(self.slowdowns, self.arrival_spec.warmup_fraction)
            )
        )

    @property
    def makespan(self) -> float:
        """Time at which the last job completed."""
        return float(np.max(self.end_times))

    @property
    def throughput(self) -> float:
        """Completed jobs per unit time over the whole run."""
        return self.num_jobs / self.makespan

    @property
    def parallel_utilization(self) -> float:
        """Fraction of total cluster capacity spent on parallel work."""
        return float(np.sum(self.demands)) / (
            self.config.workstations * self.makespan
        )

    def metrics(self) -> dict[str, float]:
        """The steady-state queueing metrics as a flat mapping (for reports)."""
        interval = self.response_time_interval
        return {
            "mean_response_time": self.mean_response_time,
            "p95_response_time": self.p95_response_time,
            "p99_response_time": self.p99_response_time,
            "max_response_time": self.max_response_time,
            "mean_wait_time": self.mean_wait_time,
            "mean_slowdown": self.mean_slowdown,
            "throughput": self.throughput,
            "parallel_utilization": self.parallel_utilization,
            "response_ci_half_width": (
                float("nan") if interval is None else interval.half_width
            ),
            "completed_jobs": float(self.num_jobs),
            "warmup_jobs": float(self.warmup_jobs),
            "admission_preemptions": self.total_admission_preemptions,
        }

    def class_metrics(self) -> dict[str, dict[str, float]]:
        """Steady-state metrics split by job class (space-shared streams only).

        Post-warmup jobs are grouped by the arrival spec's class order; a
        class with no post-warmup completion reports NaN means.  Classless
        streams return an empty mapping.
        """
        spec = self.arrival_spec
        if not spec.job_classes:
            return {}
        order = self.completion_order
        steady = slice(self.warmup_jobs, None)
        ids = self.job_class_ids[order][steady]
        responses = self.response_times[steady]
        waits = self.wait_times[steady]
        slowdowns = self.slowdowns[steady]
        out: dict[str, dict[str, float]] = {}
        for index, job_class in enumerate(spec.job_classes):
            mask = ids == float(index)
            count = int(np.sum(mask))
            if count == 0:
                stats = {
                    "mean_response_time": float("nan"),
                    "p95_response_time": float("nan"),
                    "mean_wait_time": float("nan"),
                    "mean_slowdown": float("nan"),
                }
            else:
                stats = {
                    "mean_response_time": float(np.mean(responses[mask])),
                    "p95_response_time": float(
                        np.percentile(responses[mask], 95.0)
                    ),
                    "mean_wait_time": float(np.mean(waits[mask])),
                    "mean_slowdown": float(np.mean(slowdowns[mask])),
                }
            stats["completed_jobs"] = float(count)
            stats["width"] = float(job_class.width)
            out[job_class.name] = stats
        return out

    def summary(self) -> str:
        cfg = self.config
        spec = self.arrival_spec
        interval = self.response_time_interval
        ci = (
            ""
            if interval is None
            else (
                f" ± {interval.half_width:.2f} "
                f"({interval.interval.confidence:.0%} CI)"
            )
        )
        extras = ""
        if spec.job_classes:
            widths = "/".join(str(c.width) for c in spec.job_classes)
            extras = f" adm={spec.admission_policy} w={widths}"
        return (
            f"[{self.mode}] W={cfg.workstations} T={cfg.task_demand} "
            f"U={cfg.nominal_owner_utilization:.3f} "
            f"{spec.kind}@{spec.mean_rate:.4g}{extras}: "
            f"R≈{self.mean_response_time:.2f}{ci}, "
            f"p95={self.p95_response_time:.2f}, "
            f"p99={self.p99_response_time:.2f}, "
            f"slowdown≈{self.mean_slowdown:.2f}, "
            f"X={self.throughput:.4g}, util={self.parallel_utilization:.3f} "
            f"({self.num_jobs} jobs, {self.warmup_jobs} warmup)"
        )


class OpenSystemSimulator(EventDrivenClusterSimulator):
    """Event-driven cluster fed by a stream of competing parallel jobs.

    Jobs arrive per the scenario's :class:`~repro.core.params.JobArrivalSpec`,
    wait in an admission queue and run under the scenario's scheduling policy
    on the same non-dedicated workstations as the closed-system backend.

    A *classless* spec is the PR-3 stream: FIFO admission of whole-cluster
    jobs, at most ``max_concurrent_jobs`` at once.  A spec with
    :class:`~repro.core.params.JobClassSpec` entries instead routes through
    the admission subsystem (:mod:`repro.cluster.admission`): each job
    requests its class's width, is granted an exclusive station *subset* by
    the configured admission policy (FCFS, EASY backfilling, priority with
    optional preemptive kill-and-requeue), and closed-loop classes are driven
    by think-time sources rather than the interarrival process.

    The owner and placement random streams are created in the exact order of
    the closed backend (and both admission paths share the same dispatch
    mechanics), so a single job arriving at time 0 reproduces the closed
    system's first job bitwise, and a single full-width FCFS class reproduces
    the classless stream bitwise — the reductions the regression tests pin.
    """

    mode = "open-system"

    def run(self) -> OpenSystemResult:  # type: ignore[override]
        """Simulate ``num_jobs`` arrivals and return the queueing estimates."""
        cfg = self.config
        scenario = cfg.effective_scenario
        spec = scenario.arrivals
        if spec is None:
            raise ValueError(
                "the open-system backend needs a scenario with a job-arrival "
                "process; set ScenarioSpec.arrivals (e.g. via "
                "JobArrivalSpec.poisson) or use a closed backend"
            )
        if spec.is_space_shared:
            return self._run_space_shared(cfg, scenario, spec)
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        env = Environment()
        # Stream creation order matches the closed event-driven backend
        # (owners, then placement) so the single-arrival reduction is bitwise.
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")
        arrival_rng = self._streams.stream("arrivals")
        demand_rng = self._streams.stream("job-demands")
        demand_variate = make_variate(
            spec.demand_kind, cfg.job_demand, **dict(spec.demand_kwargs)
        )
        admission = Resource(env, capacity=spec.max_concurrent_jobs)

        records: list[OpenJobRecord] = []
        job_procs = []

        def run_one_job(record: OpenJobRecord):
            with admission.request() as req:
                yield req
                record.start_time = env.now
                demands = _split_demands(
                    record.demand, scenario, cfg.workstations, placement_rng
                )
                tasks = yield from policy.run_job(env, stations, demands)
                record.end_time = env.now
                record.tasks = tuple(tasks)

        def source():
            mean_gap = spec.mean_interarrival
            for job_id in range(cfg.num_jobs):
                gap = spec.interarrival(job_id)
                if gap is None:
                    gap = float(arrival_rng.exponential(mean_gap))
                yield env.timeout(gap)
                demand = float(demand_variate.sample(demand_rng))
                while demand <= 0.0:
                    demand = float(demand_variate.sample(demand_rng))
                record = OpenJobRecord(
                    job_id=job_id, arrival_time=env.now, demand=demand
                )
                records.append(record)
                job_procs.append(env.process(run_one_job(record)))

        source_proc = env.process(source())
        # Owners cycle forever: run until all arrivals are in, then drain the
        # in-flight jobs.
        env.run(until=source_proc)
        if job_procs:
            env.run(until=env.all_of(job_procs))

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return OpenSystemResult(
            config=cfg,
            mode=self.mode,
            arrival_times=np.array(
                [r.arrival_time for r in records], dtype=np.float64
            ),
            start_times=np.array([r.start_time for r in records], dtype=np.float64),
            end_times=np.array([r.end_time for r in records], dtype=np.float64),
            demands=np.array([r.demand for r in records], dtype=np.float64),
            measured_owner_utilization=measured_util,
        )

    def _run_space_shared(
        self, cfg: SimulationConfig, scenario: ScenarioSpec, spec: JobArrivalSpec
    ) -> OpenSystemResult:
        """Space-shared engine: moldable job classes under an admission policy.

        Structured exactly like the classless path (same stream-creation
        order, same synchronous admission dispatch, same per-job wrapper
        shape) so that a single full-width FCFS class is bitwise-identical to
        the classless stream; the extra streams (class mixing, think times)
        are created *after* the shared ones and a single-class mix draws
        nothing from them.
        """
        from .admission import AdmissionController, AdmissionPreemption, make_admission_policy

        classes = spec.job_classes
        for job_class in classes:
            if job_class.width > cfg.workstations:
                raise ValueError(
                    f"job class {job_class.name!r} requests width "
                    f"{job_class.width} on a {cfg.workstations}-station cluster"
                )
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        admission_policy = make_admission_policy(
            spec.admission_policy, **dict(spec.admission_kwargs)
        )
        env = Environment()
        # Stream creation order matches the classless path (owners, placement,
        # arrivals, job-demands) so the full-width FCFS reduction is bitwise.
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")
        arrival_rng = self._streams.stream("arrivals")
        demand_rng = self._streams.stream("job-demands")
        class_rng = self._streams.stream("job-classes")
        think_rng = self._streams.stream("think-times")
        demand_variate = make_variate(
            spec.demand_kind, cfg.job_demand, **dict(spec.demand_kwargs)
        )
        mean_util = scenario.mean_utilization
        controller = AdmissionController(
            env,
            stations,
            admission_policy,
            estimate_service=lambda demand, width: demand
            / (width * (1.0 - mean_util)),
        )
        self.last_controller = controller

        records: list[OpenJobRecord] = []
        job_procs = []
        budget = cfg.num_jobs

        def sample_demand() -> float:
            demand = float(demand_variate.sample(demand_rng))
            while demand <= 0.0:
                demand = float(demand_variate.sample(demand_rng))
            return demand

        def submit(class_index: int):
            record = OpenJobRecord(
                job_id=len(records),
                arrival_time=env.now,
                demand=sample_demand(),
                width=classes[class_index].width,
                class_id=class_index,
                priority=classes[class_index].priority,
            )
            records.append(record)
            proc = env.process(run_one_job(record))
            job_procs.append(proc)
            return proc

        def run_one_job(record: OpenJobRecord):
            job_class = classes[record.class_id]
            while True:
                ticket = controller.request(
                    record,
                    width=job_class.width,
                    priority=job_class.priority,
                    class_id=record.class_id,
                )
                # The preemption guard spans the admission wait too: a job can
                # be evicted in the very instant between its admission and its
                # first resume (it is "running" to the controller but still
                # parked at the ticket event).
                try:
                    yield ticket.event
                    subset = [stations[index] for index in ticket.stations]
                    record.start_time = env.now
                    demands = _split_demands(
                        record.demand, scenario, job_class.width, placement_rng
                    )
                    tasks = yield from policy.run_job(env, subset, demands)
                except Interrupt as exc:
                    if isinstance(exc.cause, AdmissionPreemption):
                        # Evicted by a more important arrival: requeue with
                        # the full demand (restart semantics).
                        record.admission_preemptions += 1
                        continue
                    raise
                record.end_time = env.now
                record.tasks = tuple(tasks)
                controller.release(record)
                return

        open_indices = spec.open_class_indices
        open_index_array = np.array(open_indices, dtype=np.int64)
        weights = np.array(
            [classes[index].weight for index in open_indices], dtype=np.float64
        )
        if weights.size:
            weights /= weights.sum()

        def take_budget() -> bool:
            nonlocal budget
            if budget <= 0:
                return False
            budget -= 1
            return True

        def open_source():
            mean_gap = spec.mean_interarrival
            index = 0
            while take_budget():
                gap = spec.interarrival(index)
                if gap is None:
                    gap = float(arrival_rng.exponential(mean_gap))
                index += 1
                yield env.timeout(gap)
                if len(open_indices) == 1:
                    class_index = open_indices[0]
                else:
                    class_index = int(
                        class_rng.choice(open_index_array, p=weights)
                    )
                submit(class_index)

        def closed_source(class_index: int):
            job_class = classes[class_index]
            think_variate = make_variate(
                job_class.think_time_kind,
                job_class.think_time,
                **dict(job_class.think_time_kwargs),
            )
            while True:
                gap = float(think_variate.sample(think_rng))
                yield env.timeout(max(gap, 0.0))
                if not take_budget():
                    return
                yield submit(class_index)

        source_procs = []
        if open_indices:
            source_procs.append(env.process(open_source()))
        for class_index in spec.closed_class_indices:
            for _member in range(classes[class_index].population):
                source_procs.append(env.process(closed_source(class_index)))
        # Owners cycle forever: run until every source is done, then drain the
        # in-flight jobs (closed-loop sources drain their own jobs already).
        if len(source_procs) == 1:
            env.run(until=source_procs[0])
        elif source_procs:
            env.run(until=env.all_of(source_procs))
        if job_procs:
            env.run(until=env.all_of(job_procs))

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return OpenSystemResult(
            config=cfg,
            mode=self.mode,
            arrival_times=np.array(
                [r.arrival_time for r in records], dtype=np.float64
            ),
            start_times=np.array([r.start_time for r in records], dtype=np.float64),
            end_times=np.array([r.end_time for r in records], dtype=np.float64),
            demands=np.array([r.demand for r in records], dtype=np.float64),
            measured_owner_utilization=measured_util,
            widths=np.array([r.width for r in records], dtype=np.float64),
            class_ids=np.array([r.class_id for r in records], dtype=np.float64),
            restarts=np.array(
                [r.admission_preemptions for r in records], dtype=np.float64
            ),
        )


_BACKENDS = {
    "discrete-time": DiscreteTimeSimulator,
    "monte-carlo": MonteCarloSampler,
    "event-driven": EventDrivenClusterSimulator,
    "open-system": OpenSystemSimulator,
}

SimulationMode = Literal["discrete-time", "monte-carlo", "event-driven", "open-system"]


def run_simulation(
    config: SimulationConfig, mode: SimulationMode = "monte-carlo"
) -> SimulationResult | OpenSystemResult:
    """Run one simulation with the chosen back-end."""
    try:
        backend = _BACKENDS[mode]
    except KeyError:
        raise ValueError(
            f"unknown simulation mode {mode!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return backend(config).run()


def validate_against_analysis(
    config: SimulationConfig, mode: SimulationMode = "monte-carlo"
) -> dict[str, float]:
    """Compare a simulation run against the analytical model (Section 2.2).

    Returns the analytic and simulated ``E_t`` / ``E_j`` together with the
    relative errors and the CI half-width; the paper reports the two were
    "indistinguishable".
    """
    result = run_simulation(config, mode)
    analytic = evaluate_inputs(config.model_inputs)
    ej_rel_error = (
        result.mean_job_time - analytic.expected_job_time
    ) / analytic.expected_job_time
    et_rel_error = (
        result.mean_task_time - analytic.expected_task_time
    ) / analytic.expected_task_time
    return {
        "analytic_task_time": analytic.expected_task_time,
        "simulated_task_time": result.mean_task_time,
        "task_time_relative_error": et_rel_error,
        "analytic_job_time": analytic.expected_job_time,
        "simulated_job_time": result.mean_job_time,
        "job_time_relative_error": ej_rel_error,
        "job_time_ci_half_width": result.job_time_interval.half_width,
        "job_time_ci_relative_half_width": result.job_time_interval.relative_half_width,
        "num_jobs": float(result.num_jobs),
    }
