"""Compatibility shim: the simulators now live in :mod:`repro.backends`.

This module used to hold all four simulation back-ends in one 1,270-line
monolith.  They were split into the :mod:`repro.backends` package — one
module per backend plus :mod:`repro.backends.base` for the
``SimulationBackend`` protocol and the ``register_backend()`` registry that
replaced the hardcoded ``_BACKENDS`` dict — and every name that used to be
importable from here is re-exported unchanged, so pre-existing imports
(``from repro.cluster.simulation import MonteCarloSampler``) keep working.

New code should import from :mod:`repro.backends` directly.
"""

from __future__ import annotations

from ..backends.base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationConfig,
    SimulationMode,
    SimulationResult,
    backend_names,
    get_backend,
    register_backend,
    run_simulation,
    validate_against_analysis,
)
from ..backends.discrete import DiscreteTimeSimulator, simulate_task_discrete
from ..backends.event_driven import EventDrivenClusterSimulator, _split_demands
from ..backends.monte_carlo import MonteCarloSampler
from ..backends.open_system import OpenSystemResult, OpenSystemSimulator

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "OpenSystemResult",
    "simulate_task_discrete",
    "DiscreteTimeSimulator",
    "MonteCarloSampler",
    "EventDrivenClusterSimulator",
    "OpenSystemSimulator",
    "run_simulation",
    "validate_against_analysis",
    "SimulationBackend",
    "BackendCapabilities",
    "SimulationMode",
    "backend_names",
    "get_backend",
    "register_backend",
]
