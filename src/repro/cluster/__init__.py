"""Non-dedicated workstation-cluster simulator.

This package is the simulation substrate of the reproduction: explicit
workstations whose owners preempt parallel tasks, plus fast model-faithful
samplers used to validate the analytical model exactly as the paper's CSIM
study did.
"""

from .admission import (
    ADMISSION_POLICIES,
    ADMISSION_POLICY_NAMES,
    AdmissionController,
    AdmissionEvent,
    AdmissionPolicy,
    AdmissionPreemption,
    AdmissionTicket,
    EasyBackfillAdmission,
    FCFSAdmission,
    PriorityAdmission,
    make_admission_policy,
)
from .job import (
    JobResult,
    OpenJobRecord,
    TaskResult,
    balanced_tasks,
    imbalanced_tasks,
)
from .owner import OWNER_PRIORITY, TASK_PRIORITY, OwnerBehavior, owner_process
from .policies import (
    POLICIES,
    POLICY_NAMES,
    MigrateOnOwnerArrival,
    SchedulingPolicy,
    SelfScheduling,
    StaticPartition,
    make_policy,
)
from .simulation import (
    DiscreteTimeSimulator,
    EventDrivenClusterSimulator,
    MonteCarloSampler,
    OpenSystemResult,
    OpenSystemSimulator,
    SimulationConfig,
    SimulationResult,
    run_simulation,
    simulate_task_discrete,
    validate_against_analysis,
)
from .workstation import TaskExecution, Workstation

__all__ = [
    "AdmissionController",
    "AdmissionEvent",
    "AdmissionPolicy",
    "AdmissionPreemption",
    "AdmissionTicket",
    "FCFSAdmission",
    "EasyBackfillAdmission",
    "PriorityAdmission",
    "ADMISSION_POLICIES",
    "ADMISSION_POLICY_NAMES",
    "make_admission_policy",
    "OwnerBehavior",
    "owner_process",
    "OWNER_PRIORITY",
    "TASK_PRIORITY",
    "Workstation",
    "TaskExecution",
    "JobResult",
    "OpenJobRecord",
    "TaskResult",
    "balanced_tasks",
    "imbalanced_tasks",
    "SchedulingPolicy",
    "StaticPartition",
    "SelfScheduling",
    "MigrateOnOwnerArrival",
    "POLICIES",
    "POLICY_NAMES",
    "make_policy",
    "SimulationConfig",
    "SimulationResult",
    "DiscreteTimeSimulator",
    "MonteCarloSampler",
    "EventDrivenClusterSimulator",
    "OpenSystemSimulator",
    "OpenSystemResult",
    "run_simulation",
    "simulate_task_discrete",
    "validate_against_analysis",
]
