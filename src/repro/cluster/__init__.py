"""Non-dedicated workstation-cluster simulator.

This package is the simulation substrate of the reproduction: explicit
workstations whose owners preempt parallel tasks, plus fast model-faithful
samplers used to validate the analytical model exactly as the paper's CSIM
study did.
"""

from .admission import (
    ADMISSION_POLICIES,
    ADMISSION_POLICY_NAMES,
    AdmissionController,
    AdmissionEvent,
    AdmissionPolicy,
    AdmissionPreemption,
    AdmissionTicket,
    EasyBackfillAdmission,
    FCFSAdmission,
    PriorityAdmission,
    make_admission_policy,
)
from .job import (
    JobResult,
    OpenJobRecord,
    TaskResult,
    balanced_tasks,
    imbalanced_tasks,
)
from .owner import OWNER_PRIORITY, TASK_PRIORITY, OwnerBehavior, owner_process
from .policies import (
    POLICIES,
    POLICY_NAMES,
    MigrateOnOwnerArrival,
    SchedulingPolicy,
    SelfScheduling,
    StaticPartition,
    make_policy,
)
from .workstation import TaskExecution, Workstation

#: Names re-exported from the simulation shim (now :mod:`repro.backends`).
#: They resolve lazily via module ``__getattr__`` so importing this package
#: never races the backends package, which imports the leaf modules above
#: while it initialises (PEP 562).
_SIMULATION_EXPORTS = frozenset(
    {
        "DiscreteTimeSimulator",
        "EventDrivenClusterSimulator",
        "MonteCarloSampler",
        "OpenSystemResult",
        "OpenSystemSimulator",
        "SimulationConfig",
        "SimulationResult",
        "run_simulation",
        "simulate_task_discrete",
        "validate_against_analysis",
    }
)


def __getattr__(name: str):
    if name == "simulation":
        # Attribute-style access (``repro.cluster.simulation.run_simulation``)
        # used to work because the eager import bound the submodule; keep it
        # working by importing the shim on first touch.  ``import_module``
        # (not ``from . import``) avoids re-entering this __getattr__ while
        # the shim itself is mid-import.
        import importlib
        import sys

        module = sys.modules.get(f"{__name__}.simulation")
        if module is None:
            module = importlib.import_module(".simulation", __name__)
        return module
    if name in _SIMULATION_EXPORTS:
        from .. import backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _SIMULATION_EXPORTS | {"simulation"})

__all__ = [
    "AdmissionController",
    "AdmissionEvent",
    "AdmissionPolicy",
    "AdmissionPreemption",
    "AdmissionTicket",
    "FCFSAdmission",
    "EasyBackfillAdmission",
    "PriorityAdmission",
    "ADMISSION_POLICIES",
    "ADMISSION_POLICY_NAMES",
    "make_admission_policy",
    "OwnerBehavior",
    "owner_process",
    "OWNER_PRIORITY",
    "TASK_PRIORITY",
    "Workstation",
    "TaskExecution",
    "JobResult",
    "OpenJobRecord",
    "TaskResult",
    "balanced_tasks",
    "imbalanced_tasks",
    "SchedulingPolicy",
    "StaticPartition",
    "SelfScheduling",
    "MigrateOnOwnerArrival",
    "POLICIES",
    "POLICY_NAMES",
    "make_policy",
    "SimulationConfig",
    "SimulationResult",
    "DiscreteTimeSimulator",
    "MonteCarloSampler",
    "EventDrivenClusterSimulator",
    "OpenSystemSimulator",
    "OpenSystemResult",
    "run_simulation",
    "simulate_task_discrete",
    "validate_against_analysis",
]
