"""Pluggable task-scheduling policies for the event-driven cluster simulator.

The paper's program statically assigns exactly one task per workstation and
waits for the slowest one — the discipline its analysis models, kept here as
:class:`StaticPartition`.  Its conclusion section points at scheduling as the
lever for recovering the efficiency lost to owner interference, and this
module supplies the two classic relaxations on the *same* simulated cluster:

:class:`SelfScheduling`
    A shared work queue of fixed-size chunks: stations pull the next chunk as
    soon as they finish one, so a station stalled by its owner simply takes
    fewer chunks.  This replaces the ad-hoc master/worker implementation that
    previously lived behind the scheduling ablation on the PVM substrate.

:class:`MigrateOnOwnerArrival`
    Static placement, but the moment an owner preempts a task, the task's
    remainder is re-queued to the least-loaded *idle* station (the one with
    the lowest owner utilization); if every station is busy the task resumes
    in place exactly like the static policy.

Every policy executes one job as a :mod:`repro.desim` process generator whose
return value is the tuple of per-task results, so the simulator's measurement
loop is policy-agnostic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from ..desim import Environment
from .job import TaskResult
from .workstation import Workstation

__all__ = [
    "SchedulingPolicy",
    "StaticPartition",
    "SelfScheduling",
    "MigrateOnOwnerArrival",
    "POLICIES",
    "POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy:
    """Base interface: dispatch one job's demand across the workstations.

    Subclasses implement :meth:`run_job`, a process generator that completes
    when the whole job has, returning one :class:`TaskResult` per logical work
    item.  Policies must be stateless across jobs (a new ``run_job`` generator
    is created per job) and deterministic given the simulation state, so that
    a run's randomness comes only from the owners and the placement stream.
    """

    name: str = "abstract"

    def run_job(
        self,
        env: Environment,
        stations: Sequence[Workstation],
        demands: np.ndarray,
    ) -> Generator:
        raise NotImplementedError


def _task_result(record) -> TaskResult:
    return TaskResult(
        workstation=record.workstation,
        demand=record.demand,
        start_time=record.start_time,
        end_time=record.end_time,
        preemptions=record.preemptions,
    )


@dataclass(frozen=True)
class StaticPartition(SchedulingPolicy):
    """The paper's discipline: one statically assigned task per workstation."""

    name = "static"

    def run_job(
        self,
        env: Environment,
        stations: Sequence[Workstation],
        demands: np.ndarray,
    ) -> Generator:
        procs = [
            env.process(stations[w].execute_task(float(demands[w])))
            for w in range(len(stations))
        ]
        yield env.all_of(procs)
        return tuple(_task_result(proc.value) for proc in procs)


@dataclass(frozen=True)
class SelfScheduling(SchedulingPolicy):
    """Dynamic self-scheduling over a shared chunk queue.

    The job's total demand is split into ``chunks_per_station * W`` equal
    chunks held in one queue; every station loops pulling the next chunk until
    the queue drains.  Faster (less-interfered) stations automatically take
    more of the work, which shrinks the makespan's dependence on the single
    unluckiest station — the max-order-statistic effect the paper's static
    analysis is dominated by.
    """

    name = "self-scheduling"
    chunks_per_station: int = 4

    def __post_init__(self) -> None:
        if self.chunks_per_station < 1:
            raise ValueError(
                f"chunks_per_station must be >= 1, got {self.chunks_per_station!r}"
            )

    def run_job(
        self,
        env: Environment,
        stations: Sequence[Workstation],
        demands: np.ndarray,
    ) -> Generator:
        total = float(np.sum(demands))
        num_chunks = self.chunks_per_station * len(stations)
        queue = deque([total / num_chunks] * num_chunks)
        fragments: list[list] = [[] for _ in stations]

        def worker(w: int) -> Generator:
            while queue:
                chunk = queue.popleft()
                record = yield from stations[w].execute_task(chunk)
                fragments[w].append(record)

        procs = [env.process(worker(w)) for w in range(len(stations))]
        yield env.all_of(procs)
        results = []
        for w, records in enumerate(fragments):
            if not records:
                continue
            # One aggregate result per station: its chunks run back to back.
            results.append(
                TaskResult(
                    workstation=w,
                    demand=float(sum(r.demand for r in records)),
                    start_time=records[0].start_time,
                    end_time=records[-1].end_time,
                    preemptions=int(sum(r.preemptions for r in records)),
                )
            )
        return tuple(results)


class _MigrationItem:
    """Mutable bookkeeping for one migratable work item (one per station)."""

    __slots__ = ("demand", "remaining", "station", "start_time", "end_time",
                 "preemptions", "migrations")

    def __init__(self, demand: float, station: int) -> None:
        self.demand = demand
        self.remaining = demand
        self.station = station
        self.start_time: float | None = None
        self.end_time = float("nan")
        self.preemptions = 0
        self.migrations = 0


@dataclass(frozen=True)
class MigrateOnOwnerArrival(SchedulingPolicy):
    """Migrate a preempted task's remainder to the least-loaded idle station.

    Placement starts out static (task ``w`` on station ``w``).  When an owner
    arrives and preempts a task, the unfinished remainder is handed to an idle
    station — idle meaning it carries no parallel work right now; its owner
    may still show up there — choosing the one with the lowest owner
    utilization (ties broken by index).  With no idle station the task simply
    resumes in place, i.e. the policy degrades to :class:`StaticPartition`.
    """

    name = "migrate-on-owner-arrival"

    def run_job(
        self,
        env: Environment,
        stations: Sequence[Workstation],
        demands: np.ndarray,
    ) -> Generator:
        active = [1] * len(stations)
        items = [_MigrationItem(float(demands[w]), w) for w in range(len(stations))]

        def pick_idle_station(current: int) -> int | None:
            best: int | None = None
            for index, station in enumerate(stations):
                if index == current or active[index] > 0:
                    continue
                if best is None or (
                    (station.owner.utilization, index)
                    < (stations[best].owner.utilization, best)
                ):
                    best = index
            return best

        def run_item(item: _MigrationItem) -> Generator:
            while item.remaining > 0:
                record, remaining = yield from stations[item.station].execute_task_step(
                    item.remaining
                )
                if item.start_time is None:
                    item.start_time = record.start_time
                item.preemptions += record.preemptions
                item.remaining = remaining
                if remaining <= 0:
                    item.end_time = record.end_time
                    active[item.station] -= 1
                    return
                target = pick_idle_station(item.station)
                if target is not None:
                    active[item.station] -= 1
                    active[target] += 1
                    item.station = target
                    item.migrations += 1
                # No idle station: resume in place, like the static policy.

        procs = [env.process(run_item(item)) for item in items]
        yield env.all_of(procs)
        return tuple(
            TaskResult(
                workstation=item.station,
                demand=item.demand,
                start_time=float(item.start_time if item.start_time is not None else 0.0),
                end_time=item.end_time,
                preemptions=item.preemptions,
            )
            for item in items
        )


#: Registry of the built-in policies by canonical name.
POLICIES: dict[str, type[SchedulingPolicy]] = {
    StaticPartition.name: StaticPartition,
    SelfScheduling.name: SelfScheduling,
    MigrateOnOwnerArrival.name: MigrateOnOwnerArrival,
}

POLICY_NAMES: tuple[str, ...] = tuple(POLICIES)


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    Numeric keyword values are coerced to the annotated field types where
    possible (``chunks_per_station`` arrives as a float when round-tripped
    through a :class:`~repro.core.params.ScenarioSpec`'s canonical kwargs).
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; known policies: {sorted(POLICIES)}"
        ) from None
    if "chunks_per_station" in kwargs:
        kwargs["chunks_per_station"] = int(kwargs["chunks_per_station"])
    return cls(**kwargs)
