"""Prometheus text exposition: rendering and a minimal parser.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into the text format every Prometheus-compatible scraper consumes
(`exposition format 0.0.4`): ``# HELP`` / ``# TYPE`` headers followed by one
sample line per child, histograms expanded into cumulative ``_bucket`` series
plus ``_sum`` / ``_count``.

:func:`parse_prometheus_text` is the *verification* half: a strict parser of
the subset this module emits, used by the test suite and the CI smoke job to
prove a live ``GET /metrics`` answer is well-formed and that its counters
agree with the job records — a renderer pinned only by string comparison
would let an escaping bug ship silently.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "render_prometheus",
    "parse_prometheus_text",
]

#: The content type a compliant scraper expects from ``GET /metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line: backslashes and newlines."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value: backslashes, double quotes and newlines."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep verbatim, like Prometheus does
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra: Mapping[str, str] = {}) -> str:
    pairs = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(
        f'{name}="{escape_label_value(value)}"' for name, value in extra.items()
    )
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        if family.help_text:
            lines.append(f"# HELP {family.name} {escape_help(family.help_text)}")
        lines.append(f"# TYPE {family.name} {family.metric_type}")
        for labelvalues, child in family.samples():
            labels = _labels_text(family.labelnames, labelvalues)
            if isinstance(child, Histogram):
                cumulative, total_sum, total_count = child.snapshot()
                for bound, running in cumulative:
                    bucket_labels = _labels_text(
                        family.labelnames,
                        labelvalues,
                        {"le": _format_value(bound)},
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {running}"
                    )
                lines.append(f"{family.name}_sum{labels} {_format_value(total_sum)}")
                lines.append(f"{family.name}_count{labels} {total_count}")
            elif isinstance(child, (Counter, Gauge)):
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
            else:  # pragma: no cover - registry only mints the three types
                raise TypeError(f"unrenderable metric type {type(child)!r}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted label pairs): value}``.

    Strict: an unparseable sample line, an unknown ``# TYPE``, a histogram
    whose cumulative buckets decrease, or a duplicate sample raises
    ``ValueError``.  Covers exactly the subset :func:`render_prometheus`
    emits — which is the point: it is the round-trip check, not a general
    scraper.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    types: dict[str, str] = {}
    bucket_runs: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    # The exposition format is newline-delimited; split on "\n" only (not
    # splitlines(), which also splits on \r and friends — a raw carriage
    # return inside an escaped label value is legal and must survive).
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip("\t ")
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "untyped",
            ):
                raise ValueError(f"line {lineno}: bad TYPE line {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {raw!r}")
        name = match.group("name")
        labels_blob = match.group("labels")
        labels: dict[str, str] = {}
        if labels_blob:
            consumed = 0
            for pair in _LABEL_RE.finditer(labels_blob):
                labels[pair.group("key")] = _unescape(pair.group("value"))
                consumed = pair.end()
                if consumed < len(labels_blob) and labels_blob[consumed] == ",":
                    consumed += 1
            if consumed != len(labels_blob):
                raise ValueError(
                    f"line {lineno}: malformed label set {labels_blob!r}"
                )
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE line")
        key = (name, tuple(sorted(labels.items())))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
        if name.endswith("_bucket") and types.get(base) == "histogram":
            series = (base, tuple(sorted(p for p in labels.items() if p[0] != "le")))
            previous = bucket_runs.get(series)
            if previous is not None and value < previous:
                raise ValueError(
                    f"line {lineno}: histogram {base!r} buckets decrease "
                    f"({value} after {previous})"
                )
            bucket_runs[series] = value
    return samples
