"""Telemetry spine: metrics registry, span tracing, simulation event taps.

Three layers, all stdlib-only and all pure observers (a metric-instrumented,
traced, tapped run is bitwise-identical to a bare one — pinned in tests):

``metrics`` / ``prometheus``
    Process-global :class:`MetricsRegistry` of counters, gauges and
    histograms, rendered as Prometheus exposition text by the service's
    ``GET /metrics`` route and the ``repro-experiments metrics`` CLI.
``tracing`` / ``chrome_trace``
    :func:`trace_span` structured spans written as JSON lines (monotonic
    clock, pid/tid, parent span), exportable to Chrome/Perfetto trace-event
    JSON for a visual timeline of a whole sweep.
``taps``
    Opt-in hooks recording the hot loops' scheduling decisions
    (owner arrivals, preemptions, migrations, admissions) into the same
    trace stream — the first event-by-event policy debugging tool.

Layering (enforced by lint rule SL007): engine, service and backend modules
may import ``repro.obs``; the bitwise-pinned cores — ``repro.desim``, the
kernel's agenda and state machines — never do.  They expose bare ``tap``
hooks instead, which the backends wire up.
"""

from .chrome_trace import export_chrome_trace, read_trace_events, to_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .prometheus import (
    CONTENT_TYPE,
    escape_help,
    escape_label_value,
    parse_prometheus_text,
    render_prometheus,
)
from .taps import (
    SIM_EVENT_KINDS,
    SimEventTap,
    get_sim_tap,
    install_sim_tap,
    uninstall_sim_tap,
)
from .tracing import (
    Tracer,
    active_trace_path,
    configure_tracing,
    disable_tracing,
    get_tracer,
    trace_instant,
    trace_span,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "SIM_EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimEventTap",
    "Tracer",
    "active_trace_path",
    "configure_tracing",
    "disable_tracing",
    "escape_help",
    "escape_label_value",
    "export_chrome_trace",
    "get_registry",
    "get_sim_tap",
    "get_tracer",
    "install_sim_tap",
    "parse_prometheus_text",
    "read_trace_events",
    "render_prometheus",
    "to_chrome_trace",
    "trace_instant",
    "trace_span",
    "uninstall_sim_tap",
]
