"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is the *write* side of the telemetry spine: instrumented code
(the result cache, the sweep runner, the shard scheduler, the service worker)
increments process-global metrics here, and the *read* side — the service's
``GET /metrics`` route and the ``repro-experiments metrics`` CLI — renders a
snapshot as Prometheus exposition text (:mod:`repro.obs.prometheus`).

Design constraints, in order:

* **Pure observer.**  Nothing in this module touches the simulation's random
  streams or its event ordering; metrics can never perturb a result.  (The
  SL007 lint rule keeps this module out of the bitwise-pinned hot loops
  entirely.)
* **Thread-safe.**  The service mutates metrics from its worker thread while
  HTTP handler threads render snapshots; every mutation and every snapshot
  takes the metric's lock.
* **Process-local.**  Sweep workers are separate processes; their registries
  die with them.  Everything the spine reports is therefore counted in the
  *parent* (the runner observes per-point latencies that its workers measure
  and return), which is also the process the service scrapes.

Metrics follow Prometheus naming conventions (``*_total`` counters,
``*_seconds`` histograms) and support label dimensions::

    POINTS = REGISTRY.counter(
        "repro_sweep_points_total", "Points by execution path", ("path",))
    POINTS.labels(path="cached").inc(6)
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Iterable, Iterator, Mapping, Sequence, TypeVar, cast

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for wall-clock latencies, in seconds.  Log-ish
#: spacing from sub-millisecond cache replays to multi-minute shards.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_INF = float("inf")

#: Prometheus metric- and label-name grammar; enforced at registration so the
#: rendered exposition text is parseable by construction.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


_MetricT = TypeVar("_MetricT", bound="_Metric")


def _validate_labels(
    labelnames: Sequence[str], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected exactly the label names {tuple(labelnames)!r}, "
            f"got {tuple(sorted(labels))!r}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """One metric family: a name, its help text, and labelled children.

    A family declared with no label names *is* its single child — ``inc`` /
    ``set`` / ``observe`` work directly on it.  With label names, call
    :meth:`labels` to resolve (and memoise) the child for one label-value
    combination.
    """

    metric_type = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid Prometheus metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(str(n) for n in labelnames)
        for label in self.labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid Prometheus label name {label!r}")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], "_Metric"] = {}
        if not self.labelnames:
            self._children[()] = self

    def labels(self: _MetricT, **labels: str) -> _MetricT:
        """The child tracking one label-value combination (memoised)."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} declares no labels")
        key = _validate_labels(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help_text)
                self._children[key] = child
            return cast(_MetricT, child)

    def samples(self) -> list[tuple[tuple[str, ...], "_Metric"]]:
        """Snapshot of ``(label values, child)`` pairs, insertion order."""
        with self._lock:
            return list(self._children.items())

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames!r}; "
                "resolve a child via .labels(...) first"
            )


class Counter(_Metric):
    """Monotonically increasing count (resets only with the process)."""

    metric_type = "counter"

    def __init__(self, name, help_text="", labelnames=()) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that can go up and down (queue depth, ETA)."""

    metric_type = "gauge"

    def __init__(self, name, help_text="", labelnames=()) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._require_leaf()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Metric):
    """Bucketed distribution of observations (latencies, sizes).

    Buckets are declared by their *upper bounds*; a ``+Inf`` bucket is always
    appended, so ``observe`` can never lose a sample.  Rendering emits
    Prometheus's cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name,
        help_text="",
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram buckets in {bounds!r}")
        if bounds and bounds[-1] == _INF:
            bounds = bounds[:-1]
        self.bounds = bounds  # finite upper bounds, ascending
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def labels(self, **labels: str) -> "Histogram":  # children share buckets
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} declares no labels")
        key = _validate_labels(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self.name, self.help_text, buckets=self.bounds)
                self._children[key] = child
            return cast(Histogram, child)

    def observe(self, value: float) -> None:
        self._require_leaf()
        index = bisect.bisect_left(self.bounds, float(value))
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += float(value)
            self._count += 1

    def snapshot(self) -> tuple[list[tuple[float, int]], float, int]:
        """``(cumulative (le, count) pairs incl. +Inf, sum, count)``."""
        with self._lock:
            counts = list(self._bucket_counts)
            total_sum = self._sum
            total_count = self._count
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self.bounds, _INF), counts):
            running += count
            cumulative.append((bound, running))
        return cumulative, total_sum, total_count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class MetricsRegistry:
    """Process-global home of every metric family.

    Registration is idempotent: asking twice for the same name returns the
    existing family (so instrumented modules can declare their metrics at
    import time without worrying about import order or re-imports), but a
    type or label mismatch for an existing name raises — two subsystems
    silently sharing one metric under different meanings is exactly the bug
    a registry exists to prevent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls: type, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.metric_type}, not {cls.metric_type}"
                    )
                labelnames = tuple(kwargs.get("labelnames", ()))
                if tuple(existing.labelnames) != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames!r}, not {labelnames!r}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter, name, help_text, labelnames=labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(Gauge, name, help_text, labelnames=labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._register(
            Histogram, name, help_text, labelnames=labelnames, buckets=buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def collect(self) -> Iterator[_Metric]:
        """Snapshot of every registered family, registration order."""
        with self._lock:
            return iter(list(self._metrics.values()))

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def unregister(self, names: Iterable[str]) -> None:
        """Drop families by name — test isolation only, never production."""
        with self._lock:
            for name in names:
                self._metrics.pop(name, None)


#: The process-global registry every instrumented subsystem writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (function form for patchability in tests)."""
    return REGISTRY
