"""Simulation-level event taps: watch scheduling decisions event by event.

The bitwise-pinned hot loops — the event-driven backends' generators and the
array :class:`~repro.kernel.machine.EventKernel` — expose a *generic* hook
(a ``tap`` attribute, ``None`` by default) that they call with
``(kind, sim_time, **details)`` at each scheduling decision:

==================  ====================================================
``owner-arrival``   an owner woke with real demand and claims the CPU
``task-preempted``  a parallel task lost the CPU to its owner
``task-migrated``   the migration policy moved a remainder to a new station
``job-queued``      an open-system arrival waited on the admission cap
``job-admitted``    an open-system arrival acquired an admission slot
                    (space-shared: its exclusive station subset)
``job-restarted``   preemptive admission evicted a running job; it
                    requeued with its full demand
==================  ====================================================

The hot loops never import this module (enforced by lint rule SL007); the
*backends* wire an installed :class:`SimEventTap` into them per run.  Taps
are pure observers: they draw no randomness and change no event ordering, so
a tapped run is bitwise-identical to an untapped one (pinned in tests).

Opt in per process::

    tap = install_sim_tap(SimEventTap(tracer=get_tracer()))
    run_simulation(config, mode="event-driven")
    uninstall_sim_tap()
    tap.events   # [(kind, sim_time, details), ...]

Taps record only in the process that runs the simulation — under a sweep
worker pool that is the worker, so tap-based debugging is an in-process,
single-point tool (``jobs=1``), which is exactly how you debug a policy.
"""

from __future__ import annotations

import threading
from typing import Any

from .tracing import Tracer

__all__ = [
    "SIM_EVENT_KINDS",
    "SimEventTap",
    "install_sim_tap",
    "uninstall_sim_tap",
    "get_sim_tap",
]

#: Every event kind the instrumented hot loops emit.
SIM_EVENT_KINDS: tuple[str, ...] = (
    "owner-arrival",
    "task-preempted",
    "task-migrated",
    "job-queued",
    "job-admitted",
    "job-restarted",
)


class SimEventTap:
    """Collects simulation decision events, optionally mirroring to a tracer.

    ``record`` is the callable the backends hand to the hot loops.  Events
    accumulate on :attr:`events` as ``(kind, sim_time, details)`` tuples; with
    a tracer attached each event is also emitted as an ``instant`` trace
    event whose args carry the simulated clock — so a sweep trace interleaves
    wall-clock spans with simulation-time decisions.

    ``kinds`` filters what is kept (default: everything), so a long run can
    tap only migrations without paying list growth for every preemption.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        if kinds is not None:
            unknown = set(kinds) - set(SIM_EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown sim event kinds {sorted(unknown)!r}; "
                    f"expected a subset of {SIM_EVENT_KINDS!r}"
                )
        self.tracer = tracer
        self.kinds = kinds
        self.events: list[tuple[str, float, dict[str, Any]]] = []
        self._lock = threading.Lock()

    def record(self, kind: str, sim_time: float, **details: Any) -> None:
        """The hook the hot loops call; cheap, allocation-light, observer-only."""
        if self.kinds is not None and kind not in self.kinds:
            return
        with self._lock:
            self.events.append((kind, float(sim_time), details))
        if self.tracer is not None:
            self.tracer.instant(kind, cat="sim", sim_time=float(sim_time), **details)

    def counts(self) -> dict[str, int]:
        """Events seen so far, by kind."""
        with self._lock:
            totals: dict[str, int] = {}
            for kind, _, _ in self.events:
                totals[kind] = totals.get(kind, 0) + 1
            return totals

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


#: The process-global tap the backends wire into the hot loops (opt-in).
_ACTIVE_TAP: SimEventTap | None = None


def install_sim_tap(tap: SimEventTap) -> SimEventTap:
    """Install a tap for subsequent simulation runs in this process."""
    global _ACTIVE_TAP
    _ACTIVE_TAP = tap
    return tap


def uninstall_sim_tap() -> None:
    global _ACTIVE_TAP
    _ACTIVE_TAP = None


def get_sim_tap() -> SimEventTap | None:
    """The installed tap, or ``None`` (the default: hot loops stay bare)."""
    return _ACTIVE_TAP
