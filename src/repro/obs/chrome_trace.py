"""Export span/instant JSONL traces to Chrome trace-event JSON.

``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) both load the
trace-event JSON object format::

    {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
                      "pid": ..., "tid": ..., "cat": ..., "args": {...}}],
     "displayTimeUnit": "ms"}

This module maps the JSONL events of :mod:`repro.obs.tracing` onto it:

* ``span`` events become complete (``ph="X"``) slices — one box per span on
  its thread's track, nested boxes following the recorded parent ids;
* ``instant`` events (the simulation taps) become thread-scoped instant
  markers (``ph="i"``, ``s="t"``).

Timestamps are the monotonic microseconds the tracer recorded; Chrome only
needs them to share an origin, which a single machine's monotonic clock
guarantees across the sweep parent and its pool workers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["read_trace_events", "to_chrome_trace", "export_chrome_trace"]

_REQUIRED_FIELDS = {"kind", "name", "cat", "ts_us", "pid", "tid"}


def read_trace_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a JSONL trace file, validating each event's shape.

    Raises ``ValueError`` on a malformed line — a torn write would mean the
    atomic-append contract of :class:`~repro.obs.tracing.Tracer` broke, which
    the caller should hear about rather than silently drop.
    """
    events: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line ({exc})"
                ) from None
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: trace event is not an object")
            missing = _REQUIRED_FIELDS - set(event)
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: trace event missing {sorted(missing)!r}"
                )
            if event["kind"] == "span" and "dur_us" not in event:
                raise ValueError(f"{path}:{lineno}: span event has no dur_us")
            events.append(event)
    return events


def to_chrome_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert parsed JSONL events to the Chrome trace-event object form."""
    trace_events: list[dict[str, Any]] = []
    for event in events:
        args = dict(event.get("args", {}))
        if event.get("parent") is not None:
            args["parent_span"] = event["parent"]
        if event.get("id") is not None:
            args["span_id"] = event["id"]
        chrome: dict[str, Any] = {
            "name": event["name"],
            "cat": event["cat"],
            "ts": event["ts_us"],
            "pid": event["pid"],
            "tid": event["tid"],
            "args": args,
        }
        if event["kind"] == "span":
            chrome["ph"] = "X"
            chrome["dur"] = event["dur_us"]
        elif event["kind"] == "instant":
            chrome["ph"] = "i"
            chrome["s"] = "t"  # thread-scoped marker
        else:
            raise ValueError(f"unknown trace event kind {event['kind']!r}")
        trace_events.append(chrome)
    # Chrome sorts internally, but a sorted file diffs and reviews better.
    trace_events.sort(key=lambda entry: (entry["ts"], entry["pid"], entry["tid"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    jsonl_path: str | os.PathLike, out_path: str | os.PathLike
) -> int:
    """Read a JSONL trace and write the Chrome JSON; returns the event count."""
    events = read_trace_events(jsonl_path)
    payload = to_chrome_trace(events)
    out = Path(out_path)
    out.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
    return len(payload["traceEvents"])
