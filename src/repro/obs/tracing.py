"""Structured span tracing: JSON-lines events with parent/child structure.

A :class:`Tracer` appends one JSON object per line to a trace file.  Two
event kinds exist:

``span``
    A timed region — ``ts_us``/``dur_us`` from the monotonic clock, the
    process and thread ids, a per-process span id and the enclosing span's id
    (tracked through a :mod:`contextvars` variable, so nesting works across
    threads and the service's callback plumbing).
``instant``
    A point event — same identity fields, no duration.  Simulation-level
    taps (:mod:`repro.obs.taps`) emit these, carrying the *simulated* clock
    in their args next to the wall-clock timestamp.

The format is deliberately close to the Chrome trace-event JSON that
:mod:`repro.obs.chrome_trace` exports, but stays line-oriented so concurrent
writers — shard callbacks on the service thread, sweep workers in other
processes — can append without coordination: each event is a single
``os.write`` to an ``O_APPEND`` descriptor, which POSIX keeps atomic for
lines far larger than any event we emit.

**Spans are pure observers.**  Nothing here reads or advances any random
stream, and instrumented code paths run identically whether a tracer is
installed or not (``trace_span`` is a no-op context manager when tracing is
off).  A traced sweep is therefore bitwise-identical to an untraced one —
pinned in ``tests/test_obs_integration.py``.

Usage::

    configure_tracing("sweep.trace.jsonl")
    with trace_span("sweep", grid="fig01"):
        with trace_span("point", index=0):
            ...
    disable_tracing()
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_tracer",
    "active_trace_path",
    "trace_span",
    "trace_instant",
]

#: The enclosing span's id, or ``None`` at top level.  A context variable so
#: nesting is correct per thread (and survives the service's callbacks).
_CURRENT_SPAN: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Append-only JSONL trace writer bound to one file path.

    The file descriptor is opened lazily and re-opened after a ``fork`` (the
    pid is checked on every emit), so a tracer created in the sweep parent
    keeps working inside pool workers without sharing a descriptor.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fd: int | None = None
        self._fd_pid: int | None = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- plumbing -----------------------------------------------------------

    def _descriptor(self) -> int:
        pid = os.getpid()
        fd = self._fd
        if fd is None or self._fd_pid != pid:
            with self._lock:
                fd = self._fd
                if fd is None or self._fd_pid != pid:
                    fd = os.open(
                        self.path,
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                    self._fd = fd
                    self._fd_pid = pid
        return fd

    def emit(self, event: dict[str, Any]) -> None:
        """Append one event as a single atomic line write."""
        line = json.dumps(event, sort_keys=True, default=str) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None and self._fd_pid == os.getpid():
                os.close(self._fd)
            self._fd = None
            self._fd_pid = None

    def _identity(self) -> dict[str, Any]:
        return {"pid": os.getpid(), "tid": threading.get_ident()}

    # -- event kinds --------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "sweep", **args: Any) -> Iterator[None]:
        """Record a timed region; nests via the context variable."""
        span_id = next(self._ids)
        parent = _CURRENT_SPAN.get()
        token = _CURRENT_SPAN.set(span_id)
        started_ns = time.monotonic_ns()
        try:
            yield
        finally:
            ended_ns = time.monotonic_ns()
            _CURRENT_SPAN.reset(token)
            event: dict[str, Any] = {
                "kind": "span",
                "name": str(name),
                "cat": str(cat),
                "ts_us": started_ns / 1000.0,
                "dur_us": (ended_ns - started_ns) / 1000.0,
                "id": span_id,
                "parent": parent,
                **self._identity(),
            }
            if args:
                event["args"] = args
            self.emit(event)

    def instant(self, name: str, cat: str = "sim", **args: Any) -> None:
        """Record a point event under the current span."""
        event: dict[str, Any] = {
            "kind": "instant",
            "name": str(name),
            "cat": str(cat),
            "ts_us": time.monotonic_ns() / 1000.0,
            "parent": _CURRENT_SPAN.get(),
            **self._identity(),
        }
        if args:
            event["args"] = args
        self.emit(event)


#: The process-global tracer (``None`` = tracing off, all spans no-ops).
_ACTIVE: Tracer | None = None


def configure_tracing(path: str | os.PathLike) -> Tracer:
    """Install a file tracer as the process-global tracer and return it.

    Re-configuring with the same path keeps the existing tracer (this is how
    pool workers adopt the parent's trace file: the path travels in the work
    item and the worker configures on first use).
    """
    global _ACTIVE
    if _ACTIVE is not None and Path(_ACTIVE.path) == Path(path):
        return _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Tracer(path)
    return _ACTIVE


def disable_tracing() -> None:
    """Remove (and close) the process-global tracer."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


def get_tracer() -> Tracer | None:
    """The process-global tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def active_trace_path() -> str | None:
    """Path of the active trace file (what to hand to worker processes)."""
    return None if _ACTIVE is None else str(_ACTIVE.path)


@contextlib.contextmanager
def trace_span(name: str, cat: str = "sweep", **args: Any) -> Iterator[None]:
    """Span on the global tracer; a zero-cost no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.span(name, cat=cat, **args):
        yield


def trace_instant(name: str, cat: str = "sim", **args: Any) -> None:
    """Instant event on the global tracer; no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, cat=cat, **args)
