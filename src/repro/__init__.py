"""repro — reproduction of Leutenegger & Sun (1993).

*Distributed Computing Feasibility in a Non-Dedicated Homogeneous Distributed
System*, ICASE Report 93-65 / Supercomputing '93.

The package is organised as:

* :mod:`repro.core` — the analytical model (Eqs. 1-8), the task-ratio /
  weighted-efficiency metrics, feasibility thresholds and scaled-problem
  analysis;
* :mod:`repro.desim` — a process-oriented discrete-event simulation kernel
  (the CSIM substitute);
* :mod:`repro.stats` — batch means and confidence intervals;
* :mod:`repro.backends` — the pluggable simulation back-ends (discrete-time,
  Monte-Carlo, event-driven, open-system) behind a registry;
* :mod:`repro.cluster` — the non-dedicated workstation-cluster substrate
  (workstations, owners, scheduling policies, admission);
* :mod:`repro.pvm` — a PVM-like message-passing substrate in simulated time;
* :mod:`repro.workload` — owner-activity traces and the local-computation
  problem ladder;
* :mod:`repro.engine` — the parallel sweep-execution engine (process-pool
  fan-out over grids of simulation points, on-disk result cache, named
  figure grids);
* :mod:`repro.experiments` — runners regenerating every figure and finding of
  the paper, plus ablations.

Quickstart
----------
>>> from repro import JobSpec, OwnerSpec, SystemSpec, evaluate, compute_metrics
>>> job = JobSpec(total_demand=1000)
>>> system = SystemSpec(workstations=20, owner=OwnerSpec(demand=10, utilization=0.1))
>>> metrics = compute_metrics(evaluate(job, system))
>>> round(metrics.task_ratio, 1)
5.0
"""

from .core import (
    FeasibilityReport,
    JobSpec,
    MetricSet,
    ModelEvaluation,
    OwnerSpec,
    ScenarioSpec,
    StationSpec,
    SystemSpec,
    TaskRounding,
    assess_feasibility,
    compute_metrics,
    evaluate,
    expected_job_time,
    expected_task_time,
    feasibility_frontier,
    minimum_task_ratio,
    response_time_inflation,
    scaled_job_time,
    weighted_efficiency,
    weighted_speedup,
)
from .cluster import SimulationConfig, SimulationResult, run_simulation
from .engine import ResultCache, SweepRunner, build_grid
from .pvm import VirtualMachine, run_local_computation

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core model
    "JobSpec",
    "OwnerSpec",
    "SystemSpec",
    "TaskRounding",
    "ModelEvaluation",
    "MetricSet",
    "evaluate",
    "compute_metrics",
    "expected_task_time",
    "expected_job_time",
    "weighted_speedup",
    "weighted_efficiency",
    "minimum_task_ratio",
    "feasibility_frontier",
    "assess_feasibility",
    "FeasibilityReport",
    "scaled_job_time",
    "response_time_inflation",
    # scenario layer
    "StationSpec",
    "ScenarioSpec",
    # simulation
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    # sweep engine
    "SweepRunner",
    "ResultCache",
    "build_grid",
    # PVM substrate
    "VirtualMachine",
    "run_local_computation",
]
