"""PVM-like message-passing substrate running in simulated time.

Substitute for the PVM package used by the paper's experimental validation:
virtual machine of non-dedicated hosts, task spawning, typed message buffers
with send/recv/probe, and the master/worker "local computation" program whose
maximum task execution time Figure 10 reports.
"""

from .machine import PvmContext, PvmError, TaskInfo, VirtualMachine
from .messages import ANY_SOURCE, ANY_TAG, Message, MessageBuffer, PackingError
from .network import NetworkModel
from .programs import (
    DONE_TAG,
    RESULT_TAG,
    WORK_TAG,
    LocalComputationResult,
    SelfSchedulingResult,
    TaskTiming,
    local_computation_master,
    local_computation_worker,
    run_local_computation,
    run_ring_exchange,
    run_self_scheduling,
)

__all__ = [
    "VirtualMachine",
    "PvmContext",
    "PvmError",
    "TaskInfo",
    "Message",
    "MessageBuffer",
    "PackingError",
    "ANY_SOURCE",
    "ANY_TAG",
    "NetworkModel",
    "RESULT_TAG",
    "WORK_TAG",
    "DONE_TAG",
    "TaskTiming",
    "LocalComputationResult",
    "SelfSchedulingResult",
    "local_computation_master",
    "local_computation_worker",
    "run_local_computation",
    "run_self_scheduling",
    "run_ring_exchange",
]
