"""The PVM-like virtual machine: hosts, task spawning and message passing.

This is the reproduction's substitute for the PVM package the paper used for
its experimental validation (Section 4).  It offers the same programming model
in simulated time:

* a :class:`VirtualMachine` is configured with a number of *hosts*
  (non-dedicated workstations from :mod:`repro.cluster`, each with its own
  owner interfering at preemptive priority);
* *tasks* are spawned onto hosts and identified by task ids (tids);
* tasks communicate through typed :class:`~repro.pvm.messages.MessageBuffer`
  objects sent with a tag and received selectively by source/tag, with
  transfer times charged by :class:`~repro.pvm.network.NetworkModel`;
* a task performs CPU work with ``ctx.compute(demand)``, which runs on the
  host's preemptible CPU at low ("niced") priority — exactly how the paper's
  parallel tasks yield to workstation owners.

Programs are ordinary generator functions taking a :class:`PvmContext` as
their first argument; ``yield from`` composes the context's primitives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

from ..cluster.owner import OwnerBehavior
from ..cluster.workstation import TaskExecution, Workstation
from ..core.params import OwnerSpec
from ..desim import Environment, Process, Store, StreamRegistry
from .messages import ANY_SOURCE, ANY_TAG, Message, MessageBuffer
from .network import NetworkModel

__all__ = ["PvmError", "TaskInfo", "PvmContext", "VirtualMachine"]


class PvmError(RuntimeError):
    """Raised for invalid virtual-machine operations (unknown tid, bad host, ...)."""


@dataclass
class TaskInfo:
    """Book-keeping record for one spawned task."""

    tid: int
    host: int
    parent_tid: Optional[int]
    program_name: str
    spawned_at: float
    process: Process
    finished_at: float = float("nan")

    @property
    def finished(self) -> bool:
        return self.process.triggered

    @property
    def exit_value(self) -> Any:
        if not self.process.triggered:
            raise PvmError(f"task {self.tid} has not finished yet")
        return self.process.value


class PvmContext:
    """Per-task handle exposing the PVM-style API inside a program."""

    def __init__(self, vm: "VirtualMachine", tid: int, host: int, parent_tid: Optional[int]) -> None:
        self.vm = vm
        self.tid = tid
        self.host = host
        self.parent_tid = parent_tid
        self._pending: list[Message] = []

    # -- identity / clock ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (the task's system clock)."""
        return self.vm.env.now

    def mytid(self) -> int:
        """This task's id (``pvm_mytid``)."""
        return self.tid

    def parent(self) -> Optional[int]:
        """The spawning task's id, or ``None`` for the root task (``pvm_parent``)."""
        return self.parent_tid

    def config(self) -> tuple[int, int]:
        """``(number of hosts, number of live tasks)`` — a small ``pvm_config``."""
        return self.vm.num_hosts, len(self.vm.live_tasks())

    # -- computation ---------------------------------------------------------
    def compute(self, demand: float) -> Generator:
        """Perform ``demand`` units of CPU work on this task's host.

        The work runs at low priority on the host's preemptive CPU, so any
        owner activity suspends it; the returned :class:`TaskExecution` record
        carries the start/end times and the number of preemptions suffered.
        """
        workstation = self.vm.host(self.host)
        execution = yield from workstation.execute_task(demand)
        return execution

    def delay(self, duration: float) -> Generator:
        """Sleep for ``duration`` simulated time units without using the CPU."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        yield self.vm.env.timeout(duration)

    # -- task management -----------------------------------------------------
    def spawn(
        self,
        program: Callable[..., Generator],
        *args: Any,
        host: Optional[int] = None,
        **kwargs: Any,
    ) -> Generator:
        """Spawn a child task running ``program(ctx, *args, **kwargs)``.

        Charges the configured spawn overhead to the *calling* task (spawning
        is not free in PVM either), then registers and starts the child.
        Returns the child's tid.
        """
        if self.vm.spawn_overhead > 0:
            yield self.vm.env.timeout(self.vm.spawn_overhead)
        tid = self.vm.spawn(program, *args, host=host, parent_tid=self.tid, **kwargs)
        return tid

    # -- messaging ------------------------------------------------------------
    def send(
        self,
        destination: int,
        buffer: MessageBuffer,
        tag: int = 0,
    ) -> Generator:
        """Send a packed buffer to ``destination`` with ``tag`` (``pvm_send``).

        The transfer time (latency + size / bandwidth) is charged to the
        sender, after which the message is deposited in the destination task's
        mailbox.  Messages between tasks on the same host are delivered
        immediately, as PVM does for local communication.
        """
        if not isinstance(buffer, MessageBuffer):
            raise TypeError(f"send expects a MessageBuffer, got {type(buffer).__name__}")
        dest_info = self.vm.task_info(destination)
        same_host = dest_info.host == self.host
        sent_at = self.now
        yield from self.vm.network.transmit(buffer.nbytes, same_host=same_host)
        message = Message(
            source=self.tid,
            destination=destination,
            tag=tag,
            buffer=buffer.copy(),
            sent_at=sent_at,
            delivered_at=self.now,
        )
        yield self.vm.mailbox(destination).put(message)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking selective receive (``pvm_recv``).

        Returns the oldest message matching ``source`` and ``tag`` (either may
        be the wildcard ``ANY_SOURCE`` / ``ANY_TAG``); non-matching messages
        are retained for later receives in arrival order.
        """
        for i, pending in enumerate(self._pending):
            if pending.matches(source, tag):
                return self._pending.pop(i)
        mailbox = self.vm.mailbox(self.tid)
        while True:
            message = yield mailbox.get()
            if message.matches(source, tag):
                return message
            self._pending.append(message)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is available (``pvm_probe``)."""
        if any(m.matches(source, tag) for m in self._pending):
            return True
        mailbox = self.vm.mailbox(self.tid)
        return any(m.matches(source, tag) for m in mailbox.items)

    def broadcast(self, destinations: Sequence[int], buffer: MessageBuffer, tag: int = 0) -> Generator:
        """Send the same buffer to every tid in ``destinations`` (``pvm_mcast``)."""
        for destination in destinations:
            yield from self.send(destination, buffer, tag)


class VirtualMachine:
    """A PVM-style virtual machine over a cluster of non-dedicated workstations."""

    def __init__(
        self,
        num_hosts: int,
        owner: OwnerSpec | OwnerBehavior | None = None,
        *,
        seed: int = 0,
        spawn_overhead: float = 0.0,
        network_latency: float = 0.001,
        network_bandwidth: float = 1_250_000.0,
        shared_medium: bool = False,
        owner_demand_kind: str = "deterministic",
        owner_demand_kwargs: dict | None = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {num_hosts!r}")
        if spawn_overhead < 0:
            raise ValueError(f"spawn_overhead must be >= 0, got {spawn_overhead!r}")
        self.env = Environment()
        self.streams = StreamRegistry(seed)
        self.spawn_overhead = spawn_overhead
        self.network = NetworkModel(
            self.env,
            latency=network_latency,
            bytes_per_time_unit=network_bandwidth,
            shared_medium=shared_medium,
        )
        if owner is None:
            owner = OwnerSpec(demand=10.0, utilization=0.0)
        if isinstance(owner, OwnerSpec):
            behavior = OwnerBehavior.from_spec(
                owner, owner_demand_kind, **(owner_demand_kwargs or {})
            )
        else:
            behavior = owner
        self._hosts: list[Workstation] = []
        for index in range(num_hosts):
            station = Workstation(
                self.env, index, behavior, self.streams.stream(f"owner-{index}")
            )
            station.start_owner()
            self._hosts.append(station)
        self._tasks: dict[int, TaskInfo] = {}
        self._mailboxes: dict[int, Store] = {}
        self._contexts: dict[int, PvmContext] = {}
        self._tid_counter = itertools.count(start=1)
        self._round_robin = itertools.cycle(range(num_hosts))

    # -- topology -------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self._hosts)

    @property
    def hosts(self) -> Sequence[Workstation]:
        return tuple(self._hosts)

    def host(self, index: int) -> Workstation:
        """The workstation behind host ``index``."""
        if not 0 <= index < self.num_hosts:
            raise PvmError(
                f"host index {index} out of range (machine has {self.num_hosts} hosts)"
            )
        return self._hosts[index]

    def measured_owner_utilizations(self) -> list[float]:
        """Measured owner utilization of every host (simulated ``uptime`` survey)."""
        return [h.measured_owner_utilization() for h in self._hosts]

    # -- tasks -----------------------------------------------------------------
    def spawn(
        self,
        program: Callable[..., Generator],
        *args: Any,
        host: Optional[int] = None,
        parent_tid: Optional[int] = None,
        **kwargs: Any,
    ) -> int:
        """Create a task running ``program(ctx, *args, **kwargs)`` and return its tid.

        ``host=None`` places the task round-robin over the hosts, which is how
        PVM's default spawn placement behaves for a homogeneous machine.
        """
        if host is None:
            host = next(self._round_robin)
        if not 0 <= host < self.num_hosts:
            raise PvmError(
                f"host index {host} out of range (machine has {self.num_hosts} hosts)"
            )
        tid = next(self._tid_counter)
        context = PvmContext(self, tid, host, parent_tid)
        self._mailboxes[tid] = Store(self.env)
        self._contexts[tid] = context
        generator = program(context, *args, **kwargs)
        process = self.env.process(self._wrap(tid, generator))
        info = TaskInfo(
            tid=tid,
            host=host,
            parent_tid=parent_tid,
            program_name=getattr(program, "__name__", repr(program)),
            spawned_at=self.env.now,
            process=process,
        )
        self._tasks[tid] = info
        return tid

    def _wrap(self, tid: int, generator: Generator) -> Generator:
        """Record task completion time around the user program."""
        value = yield from generator
        self._tasks[tid].finished_at = self.env.now
        return value

    def task_info(self, tid: int) -> TaskInfo:
        """Book-keeping record of a task."""
        try:
            return self._tasks[tid]
        except KeyError:
            raise PvmError(f"unknown task id {tid}") from None

    def mailbox(self, tid: int) -> Store:
        """The mailbox (message store) of a task."""
        try:
            return self._mailboxes[tid]
        except KeyError:
            raise PvmError(f"unknown task id {tid}") from None

    def live_tasks(self) -> list[TaskInfo]:
        """Tasks whose program has not returned yet."""
        return [info for info in self._tasks.values() if not info.finished]

    @property
    def tasks(self) -> Sequence[TaskInfo]:
        return tuple(self._tasks.values())

    # -- execution ---------------------------------------------------------------
    def run_program(
        self,
        program: Callable[..., Generator],
        *args: Any,
        host: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Spawn ``program`` as the root task and run until it returns.

        Returns the program's return value.  Owner processes keep cycling in
        the background, so the virtual machine can be reused for further runs
        (the clock keeps advancing monotonically).
        """
        tid = self.spawn(program, *args, host=host, parent_tid=None, **kwargs)
        process = self._tasks[tid].process
        self.env.run(until=process)
        return process.value
