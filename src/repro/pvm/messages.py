"""Typed message buffers for the PVM-like substrate.

PVM programs communicate by packing typed items into a send buffer
(``pvm_pkint``, ``pvm_pkdouble``, ...), sending it with a tag, and unpacking
on the receiving side in the same order.  :class:`MessageBuffer` reproduces
that pack/unpack discipline (including the strict type/order checking that
makes mismatched pack/unpack sequences fail loudly), and :class:`Message` is
the envelope carried through the virtual machine: source/destination task ids,
a tag, the buffer and its simulated size in bytes (used by the network model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

__all__ = ["PackingError", "MessageBuffer", "Message", "ANY_SOURCE", "ANY_TAG"]

#: Wildcards accepted by ``recv`` (mirroring PVM's -1 conventions).
ANY_SOURCE = -1
ANY_TAG = -1

#: Simulated sizes (bytes) of each packable item type, used for network timing.
_TYPE_SIZES = {
    "int": 4,
    "double": 8,
    "string": 1,  # per character
    "int_array": 4,  # per element
    "double_array": 8,  # per element
}


class PackingError(RuntimeError):
    """Raised when unpacking does not match the packing order or types."""


@dataclass
class MessageBuffer:
    """An ordered, typed sequence of packed items (PVM send/receive buffer)."""

    _items: list[tuple[str, Any]] = field(default_factory=list)
    _cursor: int = 0

    # -- packing -----------------------------------------------------------
    def pack_int(self, value: int) -> "MessageBuffer":
        """Pack a single integer."""
        self._items.append(("int", int(value)))
        return self

    def pack_double(self, value: float) -> "MessageBuffer":
        """Pack a single double-precision float."""
        self._items.append(("double", float(value)))
        return self

    def pack_string(self, value: str) -> "MessageBuffer":
        """Pack a character string."""
        self._items.append(("string", str(value)))
        return self

    def pack_int_array(self, values: Sequence[int]) -> "MessageBuffer":
        """Pack an array of integers."""
        self._items.append(("int_array", np.asarray(values, dtype=np.int64).copy()))
        return self

    def pack_double_array(self, values: Sequence[float]) -> "MessageBuffer":
        """Pack an array of doubles."""
        self._items.append(
            ("double_array", np.asarray(values, dtype=np.float64).copy())
        )
        return self

    # -- unpacking ---------------------------------------------------------
    def _unpack(self, expected_type: str) -> Any:
        if self._cursor >= len(self._items):
            raise PackingError(
                f"attempted to unpack {expected_type!r} but the buffer is exhausted"
            )
        actual_type, value = self._items[self._cursor]
        if actual_type != expected_type:
            raise PackingError(
                f"unpack type mismatch at position {self._cursor}: buffer holds "
                f"{actual_type!r}, caller asked for {expected_type!r}"
            )
        self._cursor += 1
        return value

    def unpack_int(self) -> int:
        """Unpack the next item as an integer."""
        return self._unpack("int")

    def unpack_double(self) -> float:
        """Unpack the next item as a double."""
        return self._unpack("double")

    def unpack_string(self) -> str:
        """Unpack the next item as a string."""
        return self._unpack("string")

    def unpack_int_array(self) -> np.ndarray:
        """Unpack the next item as an integer array."""
        return self._unpack("int_array")

    def unpack_double_array(self) -> np.ndarray:
        """Unpack the next item as a double array."""
        return self._unpack("double_array")

    # -- introspection -----------------------------------------------------
    def rewind(self) -> None:
        """Reset the unpack cursor to the beginning of the buffer."""
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._items)

    @property
    def remaining(self) -> int:
        """Number of items not yet unpacked."""
        return len(self._items) - self._cursor

    @property
    def nbytes(self) -> int:
        """Simulated wire size of the packed data in bytes."""
        total = 0
        for item_type, value in self._items:
            unit = _TYPE_SIZES[item_type]
            if item_type == "string":
                total += unit * len(value)
            elif item_type.endswith("_array"):
                total += unit * len(value)
            else:
                total += unit
        return total

    def copy(self) -> "MessageBuffer":
        """Deep-enough copy delivered to the receiver (arrays are copied)."""
        items = [
            (t, v.copy() if isinstance(v, np.ndarray) else v) for t, v in self._items
        ]
        return MessageBuffer(_items=items, _cursor=0)


@dataclass(frozen=True)
class Message:
    """A message in flight (or delivered) inside the virtual machine."""

    source: int
    destination: int
    tag: int
    buffer: MessageBuffer
    sent_at: float
    delivered_at: float = float("nan")

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    @property
    def latency(self) -> float:
        """Simulated transit time (NaN until delivered)."""
        return self.delivered_at - self.sent_at

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message satisfies a ``recv(source, tag)`` with wildcards."""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok
