"""Parallel programs for the PVM-like substrate.

The paper's experimental validation runs a *local computation* program: a
master forks one worker per workstation, each worker computes independently
(no interprocess communication), records its own start/finish times, and the
master reports the **maximum task execution time** — deliberately excluding
the spawn/collection overhead of the parallel-computing package so the
measurement isolates owner interference (Section 4).

:func:`run_local_computation` reproduces that experiment.  Two further
programs exercise the messaging substrate on realistic patterns:

* :func:`run_self_scheduling` — a master/worker *work-queue* (self-scheduling)
  version of the same computation, where the job is split into more chunks
  than workers and each worker asks for the next chunk when it finishes the
  previous one.  This is the classic remedy for stragglers and provides an
  interesting extension experiment: dynamic scheduling partially hides owner
  interference that static partitioning cannot.
* :func:`run_ring_exchange` — a synthetic nearest-neighbour exchange that
  stresses send/recv ordering (used by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

import numpy as np

from .machine import PvmContext, VirtualMachine
from .messages import ANY_SOURCE, MessageBuffer

__all__ = [
    "RESULT_TAG",
    "WORK_TAG",
    "DONE_TAG",
    "TaskTiming",
    "LocalComputationResult",
    "local_computation_worker",
    "local_computation_master",
    "run_local_computation",
    "SelfSchedulingResult",
    "run_self_scheduling",
    "run_ring_exchange",
]

#: Message tags (arbitrary but fixed, as in a real PVM program).
RESULT_TAG = 11
WORK_TAG = 21
DONE_TAG = 31


@dataclass(frozen=True)
class TaskTiming:
    """Start/end timestamps reported by one worker."""

    tid: int
    host: int
    start_time: float
    end_time: float
    preemptions: int

    @property
    def execution_time(self) -> float:
        """The worker's task execution time (its own clock, as in the paper)."""
        return self.end_time - self.start_time


@dataclass(frozen=True)
class LocalComputationResult:
    """Result of one run of the local-computation experiment."""

    job_demand: float
    workers: int
    timings: tuple[TaskTiming, ...]
    master_elapsed: float

    @property
    def max_task_time(self) -> float:
        """Maximum task execution time — the paper's primary measured metric."""
        return max(t.execution_time for t in self.timings)

    @property
    def mean_task_time(self) -> float:
        return float(np.mean([t.execution_time for t in self.timings]))

    @property
    def total_preemptions(self) -> int:
        return int(sum(t.preemptions for t in self.timings))

    def speedup_versus(self, single_workstation_time: float) -> float:
        """Speedup as defined in Section 4: max-task-time(1) / max-task-time(W)."""
        return single_workstation_time / self.max_task_time


def local_computation_worker(ctx: PvmContext, demand: float) -> Generator:
    """Worker side: compute ``demand`` units, then report timings to the parent."""
    start = ctx.now
    execution = yield from ctx.compute(demand)
    end = ctx.now
    buffer = MessageBuffer()
    buffer.pack_int(ctx.mytid())
    buffer.pack_int(ctx.host)
    buffer.pack_double(start)
    buffer.pack_double(end)
    buffer.pack_int(execution.preemptions)
    parent = ctx.parent()
    assert parent is not None, "local computation worker must be spawned by a master"
    yield from ctx.send(parent, buffer, RESULT_TAG)
    return end - start


def local_computation_master(
    ctx: PvmContext,
    job_demand: float,
    workers: int,
    demands: Optional[Sequence[float]] = None,
) -> Generator:
    """Master side: fork one worker per host, gather timings, report the maximum."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    if workers > ctx.vm.num_hosts:
        raise ValueError(
            f"cannot run {workers} workers on {ctx.vm.num_hosts} hosts "
            "(the experiment places one task per workstation)"
        )
    started = ctx.now
    if demands is None:
        demands = [job_demand / workers] * workers
    if len(demands) != workers:
        raise ValueError(
            f"expected {workers} per-task demands, got {len(demands)}"
        )
    tids = []
    for w in range(workers):
        tid = yield from ctx.spawn(
            local_computation_worker, float(demands[w]), host=w
        )
        tids.append(tid)
    timings: list[TaskTiming] = []
    for _ in tids:
        message = yield from ctx.recv(source=ANY_SOURCE, tag=RESULT_TAG)
        buf = message.buffer
        timings.append(
            TaskTiming(
                tid=buf.unpack_int(),
                host=buf.unpack_int(),
                start_time=buf.unpack_double(),
                end_time=buf.unpack_double(),
                preemptions=buf.unpack_int(),
            )
        )
    timings.sort(key=lambda t: t.host)
    return LocalComputationResult(
        job_demand=float(job_demand),
        workers=workers,
        timings=tuple(timings),
        master_elapsed=ctx.now - started,
    )


def run_local_computation(
    vm: VirtualMachine,
    job_demand: float,
    workers: Optional[int] = None,
    demands: Optional[Sequence[float]] = None,
) -> LocalComputationResult:
    """Run the paper's local-computation experiment once on a virtual machine."""
    if workers is None:
        workers = vm.num_hosts
    return vm.run_program(
        local_computation_master, float(job_demand), int(workers), demands, host=0
    )


@dataclass(frozen=True)
class SelfSchedulingResult:
    """Result of the dynamic (work-queue) variant of the computation."""

    job_demand: float
    workers: int
    chunks: int
    chunk_counts: tuple[int, ...]
    worker_busy_times: tuple[float, ...]
    elapsed: float

    @property
    def makespan(self) -> float:
        """Wall-clock completion time of the whole job (master's view)."""
        return self.elapsed

    @property
    def load_imbalance(self) -> float:
        """Max worker busy time over mean worker busy time (1.0 = perfectly even)."""
        busy = np.asarray(self.worker_busy_times)
        mean = float(busy.mean())
        if mean == 0:
            return 1.0
        return float(busy.max()) / mean


def _self_scheduling_worker(ctx: PvmContext) -> Generator:
    """Worker: repeatedly request a chunk, compute it, and return the result."""
    parent = ctx.parent()
    assert parent is not None
    busy = 0.0
    completed = 0
    # Announce readiness.
    ready = MessageBuffer().pack_int(ctx.mytid())
    yield from ctx.send(parent, ready, RESULT_TAG)
    while True:
        message = yield from ctx.recv(source=parent)
        if message.tag == DONE_TAG:
            break
        chunk_demand = message.buffer.unpack_double()
        execution = yield from ctx.compute(chunk_demand)
        busy += execution.elapsed
        completed += 1
        reply = MessageBuffer().pack_int(ctx.mytid())
        yield from ctx.send(parent, reply, RESULT_TAG)
    summary = MessageBuffer().pack_int(completed).pack_double(busy)
    yield from ctx.send(parent, summary, DONE_TAG)
    return completed


def _self_scheduling_master(
    ctx: PvmContext, job_demand: float, workers: int, chunks: int
) -> Generator:
    """Master: hand out chunks to whichever worker asks next (work queue)."""
    started = ctx.now
    chunk_demand = job_demand / chunks
    tids = []
    for w in range(workers):
        tid = yield from ctx.spawn(_self_scheduling_worker, host=w % ctx.vm.num_hosts)
        tids.append(tid)
    remaining = chunks
    completed = 0
    has_outstanding_chunk: dict[int, bool] = {tid: False for tid in tids}
    # Serve "give me work" requests until every chunk has been completed.
    # Each RESULT_TAG message means the sender is idle: either its initial
    # "ready" announcement or the completion of the chunk it was assigned.
    while completed < chunks:
        message = yield from ctx.recv(source=ANY_SOURCE, tag=RESULT_TAG)
        worker_tid = message.buffer.unpack_int()
        if has_outstanding_chunk.get(worker_tid, False):
            completed += 1
            has_outstanding_chunk[worker_tid] = False
        if remaining > 0:
            work = MessageBuffer().pack_double(chunk_demand)
            yield from ctx.send(worker_tid, work, WORK_TAG)
            remaining -= 1
            has_outstanding_chunk[worker_tid] = True
    # Tell everyone to stop and collect their summaries.
    chunk_counts: dict[int, int] = {}
    busy_times: dict[int, float] = {}
    for tid in tids:
        done = MessageBuffer()
        yield from ctx.send(tid, done, DONE_TAG)
    for _ in tids:
        message = yield from ctx.recv(source=ANY_SOURCE, tag=DONE_TAG)
        count = message.buffer.unpack_int()
        busy = message.buffer.unpack_double()
        chunk_counts[message.source] = count
        busy_times[message.source] = busy
    ordered = sorted(tids)
    return SelfSchedulingResult(
        job_demand=float(job_demand),
        workers=workers,
        chunks=chunks,
        chunk_counts=tuple(chunk_counts[t] for t in ordered),
        worker_busy_times=tuple(busy_times[t] for t in ordered),
        elapsed=ctx.now - started,
    )


def run_self_scheduling(
    vm: VirtualMachine,
    job_demand: float,
    workers: Optional[int] = None,
    chunks_per_worker: int = 4,
) -> SelfSchedulingResult:
    """Run the dynamic work-queue variant of the computation.

    The job is split into ``chunks_per_worker * workers`` equal chunks and
    handed out on demand, so a workstation suffering heavy owner interference
    simply completes fewer chunks instead of dragging the whole job.
    """
    if workers is None:
        workers = vm.num_hosts
    chunks = int(chunks_per_worker) * int(workers)
    if chunks < workers:
        raise ValueError("need at least one chunk per worker")
    return vm.run_program(
        _self_scheduling_master, float(job_demand), int(workers), chunks, host=0
    )


def _ring_worker(ctx: PvmContext, right_tid_event: int, rounds: int, payload: int) -> Generator:
    """Forward a token around a ring ``rounds`` times (messaging stress test)."""
    # The master sends us our right neighbour's tid first.
    setup = yield from ctx.recv(tag=WORK_TAG)
    right = setup.buffer.unpack_int()
    token_count = 0
    for _ in range(rounds):
        message = yield from ctx.recv(tag=RESULT_TAG)
        data = message.buffer.unpack_int_array()
        token_count += 1
        out = MessageBuffer().pack_int_array(data)
        yield from ctx.send(right, out, RESULT_TAG)
    return token_count


def run_ring_exchange(
    vm: VirtualMachine, ring_size: int, rounds: int = 1, payload: int = 64
) -> int:
    """Pass a token around a ring of tasks; returns total hops completed.

    Purely a substrate-exercise program (ordering, wildcards, array payloads);
    it has no analogue in the paper but is used by the integration tests and
    the messaging example.
    """

    def master(ctx: PvmContext) -> Generator:
        if ring_size < 2:
            raise ValueError(f"ring_size must be >= 2, got {ring_size!r}")
        tids = []
        for i in range(ring_size):
            tid = yield from ctx.spawn(
                _ring_worker, 0, rounds, payload, host=i % ctx.vm.num_hosts
            )
            tids.append(tid)
        # Tell each worker who its right neighbour is.
        for i, tid in enumerate(tids):
            right = tids[(i + 1) % ring_size]
            setup = MessageBuffer().pack_int(right)
            yield from ctx.send(tid, setup, WORK_TAG)
        # Inject the token at the first worker for each round.
        token = MessageBuffer().pack_int_array(np.arange(payload))
        for _ in range(rounds):
            yield from ctx.send(tids[0], token, RESULT_TAG)
            # Wait for it to come back around: the last worker sends to tids[0],
            # but round-trip completion is detected by the first worker having
            # received `rounds` tokens, so simply wait for all workers at the end.
        total = 0
        for tid in tids:
            info = ctx.vm.task_info(tid)
            yield info.process
            total += info.exit_value
        return total

    return vm.run_program(master, host=0)
