"""Local-area-network model for the PVM-like substrate.

The paper's experimental platform is a handful of workstations on a LAN; its
"local computation" benchmark deliberately has no interprocess communication,
so the network only matters for task spawning and for returning per-task
timings to the master.  We model the LAN as a simple latency + bandwidth pipe
with an optional shared-medium (Ethernet-like) mode in which transfers
serialise on a single channel — enough to (a) charge realistic, non-zero costs
for control traffic, and (b) support communication-bearing example programs
built on the same substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..desim import Environment, Resource

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkParameters:
    """Latency/bandwidth description of the LAN."""

    latency: float = 0.001
    bytes_per_time_unit: float = 1_250_000.0
    shared_medium: bool = False

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency!r}")
        if self.bytes_per_time_unit <= 0:
            raise ValueError(
                f"bytes_per_time_unit must be positive, got {self.bytes_per_time_unit!r}"
            )


class NetworkModel:
    """Charges simulated time for message transfers between hosts.

    ``transfer_time(nbytes)`` is ``latency + nbytes / bandwidth``; messages
    between a host and itself are free (PVM short-circuits local delivery).
    With ``shared_medium=True`` all transfers additionally serialise on one
    channel, modelling a classic shared Ethernet segment.
    """

    def __init__(
        self,
        env: Environment,
        latency: float = 0.001,
        bytes_per_time_unit: float = 1_250_000.0,
        shared_medium: bool = False,
    ) -> None:
        self.env = env
        self.params = NetworkParameters(
            latency=latency,
            bytes_per_time_unit=bytes_per_time_unit,
            shared_medium=shared_medium,
        )
        self._channel = Resource(env, capacity=1) if shared_medium else None
        #: Total bytes carried (book-keeping for experiments).
        self.bytes_transferred = 0
        #: Total messages carried.
        self.messages_transferred = 0

    def transfer_time(self, nbytes: int, same_host: bool = False) -> float:
        """Pure transfer delay for a message of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if same_host:
            return 0.0
        return self.params.latency + nbytes / self.params.bytes_per_time_unit

    def transmit(self, nbytes: int, same_host: bool = False) -> Generator:
        """Process generator that waits for one message transfer to complete."""
        delay = self.transfer_time(nbytes, same_host)
        if not same_host:
            self.bytes_transferred += int(nbytes)
            self.messages_transferred += 1
        if delay <= 0.0:
            return
        if self._channel is None:
            yield self.env.timeout(delay)
            return
        with self._channel.request() as req:
            yield req
            yield self.env.timeout(delay)
