"""Flattened state-machine executor for the event-driven cluster model.

:class:`EventKernel` re-implements the two process-oriented back-ends —
``event-driven`` (closed) and ``open-system`` (classless job stream) — as one
flat event loop over the :mod:`repro.kernel.agenda` heap.  The oracle models
owners, tasks, jobs and sources as Python generator coroutines parked on
:mod:`repro.desim` events; the kernel replaces every coroutine with a small
transition table keyed by an integer event kind, and every event object with
a plain heap tuple.  Nothing else changes: the kernel performs the *same*
floating-point operations in the *same* order on the *same* RNG streams, so
its results are bitwise-identical to the oracle's (pinned by
``tests/test_kernel.py``).

Equivalence contract (how each oracle construct maps):

================================  =========================================
oracle (generators + desim)       kernel (flat loop)
================================  =========================================
``Process`` init event            ``*_INIT`` / ``*_WAKE`` urgent push
``Timeout``                       push at ``now + delay``, NORMAL
``PreemptiveResource`` grant      ``TASK_GRANT`` / ``OWNER_GRANT`` push
owner preempting the task holder  ``TASK_INTERRUPT`` urgent push, then the
                                  owner's grant push (the oracle enqueues
                                  the interrupt in ``_maybe_preempt`` before
                                  ``_dispatch`` succeeds the owner request)
``Release`` completion event      :meth:`EventAgenda.tick` (guaranteed
                                  no-op pop, elided; see ``agenda.py``)
process termination, unobserved   ``tick()`` likewise
process termination, awaited      ``TASK_EXIT`` / ``JOB_EXIT`` push
``AllOf`` over a job's tasks      ``pending`` countdown -> ``JOB_ALLOF``
================================  =========================================

Stale-event handling replaces the oracle's callback detachment: every task
carries a monotonically increasing ``serial``; ``TASK_GRANT``/``TASK_DONE``
entries embed the serial they were pushed with and are skipped on pop if the
task has since been interrupted or re-granted (lazy deletion — the oracle
pops the same stale events as no-ops after ``Process._resume`` detaches).

Two accounting shortcuts, both output-preserving: per-task preemption /
migration counters are not tracked (no backend result exposes them), and the
owner-busy time-weighted monitor is folded into a running ``area`` per
station (the monitor's ``0.0``-valued updates add exactly ``0.0``).

Owner think-time pre-draw: when a station's think variate draws from the RNG
(``draws_rng``) and its demand variate does not, the think stream is the only
consumer of that station's generator, so the kernel pre-draws think times in
blocks via ``Variate.sample_batch`` — bitwise-identical to sequential scalar
draws (see ``repro.desim.rng``) but amortising the numpy call overhead.
Stations whose demand also draws (or trace replays) fall back to scalar
sampling in the exact interleaved order.

This module deliberately imports no :mod:`repro.desim` generator machinery
(enforced by simlint rule SL006) and nothing from :mod:`repro.backends`
(avoids an import cycle; the backend adapter lives in
:mod:`repro.kernel.backend`).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable

import numpy as np

from ..cluster.admission import (
    EasyBackfillAdmission,
    PriorityAdmission,
    make_admission_policy,
)
from ..cluster.job import balanced_tasks, imbalanced_tasks
from ..cluster.owner import OwnerBehavior
from ..cluster.policies import (
    MigrateOnOwnerArrival,
    SchedulingPolicy,
    SelfScheduling,
    StaticPartition,
    make_policy,
)
from ..core.params import ScenarioSpec, StationSpec
from ..desim.rng import StreamRegistry, make_variate
from .agenda import NORMAL, URGENT, EventAgenda

__all__ = ["EventKernel", "KERNEL_POLICIES"]

#: Scheduling policies the kernel has transition tables for.
KERNEL_POLICIES: tuple[str, ...] = (
    StaticPartition.name,
    SelfScheduling.name,
    MigrateOnOwnerArrival.name,
)

# Event kinds.  One integer per distinct continuation in the oracle's
# generators; frequency-ordered comments refer to the dispatch chain below.
_OWNER_INIT = 0
_OWNER_WAKE = 1
_OWNER_GRANT = 2
_OWNER_DONE = 3
_TASK_INIT = 4
_TASK_GRANT = 5
_TASK_DONE = 6
_TASK_INTERRUPT = 7
_TASK_EXIT = 8
_JOB_INIT = 9
_JOB_ALLOF = 10
_JOB_EXIT = 11
_DRIVER_EXIT = 12
_SOURCE_INIT = 13
_SOURCE_WAKE = 14
_SOURCE_EXIT = 15
_ADMIT_GRANT = 16
# Space-shared admission kinds (run_space_shared's loop; it reuses the owner /
# task / job kinds above and adds the admission-controller continuations).
_ADMIT_TICKET = 17  # AdmissionTicket.event succeeded: the job may start
_ADMIT_KILL_TASK = 18  # admission preemption interrupt on one live task
_TASK_FAIL = 19  # a killed task's failed termination (the join's check)
_JOB_ABORT = 20  # the tasks' AllOf failed: requeue the job (restart)
_JOB_KILL = 21  # preemption interrupt on the job process itself
_SRC_OPEN_INIT = 22
_SRC_OPEN_WAKE = 23
_SRC_CLOSED_INIT = 24
_SRC_CLOSED_WAKE = 25
_SRC_EXIT = 26  # one source's termination event
_SRC_ALLOF = 27  # the sources' AllOf succeeded: stop condition #1

# Scheduling-policy transition tables (per-task continuation flavours).
_ROLE_STATIC = 0  # StaticPartition: one task per station, resume in place
_ROLE_WORKER = 1  # SelfScheduling: stations pull equal chunks off one queue
_ROLE_ITEM = 2  # MigrateOnOwnerArrival: remainder migrates on preemption

#: CPU-holder sentinel for "the owner" (tasks are held as their own records).
_OWNER_HOLDER = object()

_INF = float("inf")

#: Think-times pre-drawn per refill of an owner's buffer.
_THINK_BLOCK = 256


class _Task:
    """Flattened state of one task / worker / migration-item process."""

    __slots__ = (
        "job",
        "station",
        "remaining",
        "serial",
        "started",
        "rec_start",
        "first_start",
        "end",
        "frag_count",
    )

    def __init__(self, job: "_Job", station: int) -> None:
        self.job = job
        self.station = station
        self.remaining = 0.0
        #: Lazy-deletion stamp; bumped on every grant push / interrupt.
        self.serial = 0
        #: Service start of the current CPU grant (None while waiting).
        self.started: float | None = None
        #: Start of the current execution record (task / chunk / step).
        self.rec_start = 0.0
        #: Start of the first record (self-scheduling / migration aggregate).
        self.first_start: float | None = None
        self.end = 0.0
        #: Completed chunks (self-scheduling; 0 means "no fragments ran").
        self.frag_count = 0


class _Job:
    """Flattened state of one job (closed driver slot or open arrival)."""

    __slots__ = ("index", "start", "demand", "pending", "tasks", "active", "chunk", "chunks_left")

    def __init__(self, index: int) -> None:
        self.index = index
        self.start = 0.0
        self.demand = 0.0  # open mode: the drawn total demand
        self.pending = 0  # tasks still running (the oracle's AllOf count)
        self.tasks: list[_Task] = []
        self.active: list[int] = []  # migrate policy's per-station item count
        self.chunk = 0.0  # self-scheduling chunk size
        self.chunks_left = 0  # self-scheduling chunks not yet pulled


class _SJob:
    """Flattened state of one space-shared (moldable, classed) job.

    One record spans the job's whole restart chain: every admission
    preemption discards the running attempt (:class:`_SAttempt`) and requeues
    this same record with its full demand, exactly like the oracle's
    ``run_one_job`` retry loop.
    """

    __slots__ = (
        "index",
        "class_id",
        "width",
        "priority",
        "demand",
        "seq",
        "serial",
        "subset",
        "att",
        "waiter",
    )

    def __init__(
        self, index: int, class_id: int, width: int, priority: int, demand: float
    ) -> None:
        self.index = index
        self.class_id = class_id
        self.width = width
        self.priority = priority
        self.demand = demand
        #: Admission-queue arrival order of the *current* request (the
        #: oracle's ``AdmissionTicket.seq``; re-stamped on every requeue).
        self.seq = 0
        #: Lazy-deletion stamp for pending admission tickets (bumped when the
        #: job process is interrupted while parked at its ticket).
        self.serial = 0
        #: Allocated station indices (ascending), ``None`` while queued.
        self.subset: list[int] | None = None
        #: The running attempt, ``None`` while queued / parked at a ticket.
        self.att: "_SAttempt | None" = None
        #: Closed-loop source parked on this job's termination (``None`` for
        #: open arrivals).
        self.waiter: "_SSource | None" = None


class _SAttempt:
    """One execution attempt of a space-shared job (the tasks' AllOf join)."""

    __slots__ = ("job", "pending", "failed", "dead", "active", "chunk", "chunks_left")

    def __init__(self, job: _SJob) -> None:
        self.job = job
        self.pending = 0  # tasks still running (the oracle's AllOf count)
        #: The join failed: a task was killed by admission preemption.
        self.failed = False
        #: The job process detached from this attempt (requeued); any late
        #: join event is a stale no-op, like the oracle's detached AllOf.
        self.dead = False
        self.active: list[int] = []  # migrate policy's per-position item count
        self.chunk = 0.0  # self-scheduling chunk size
        self.chunks_left = 0  # self-scheduling chunks not yet pulled


class _STask:
    """Flattened state of one task process on a station *subset* position."""

    __slots__ = ("att", "pos", "station", "remaining", "serial", "started")

    def __init__(self, att: _SAttempt, pos: int, station: int) -> None:
        self.att = att
        self.pos = pos  # position within the job's subset (migration index)
        self.station = station  # global station index (CPU/owner state)
        self.remaining = 0.0
        #: Lazy-deletion stamp; bumped on every grant push / interrupt / kill.
        self.serial = 0
        self.started: float | None = None


class _SRun:
    """Bookkeeping for one admitted job (the oracle's ``_RunningJob``)."""

    __slots__ = ("job", "stations", "admitted_at", "estimate")

    def __init__(
        self, job: _SJob, stations: list[int], admitted_at: float, estimate: float
    ) -> None:
        self.job = job
        self.stations = stations
        self.admitted_at = admitted_at
        #: Ideal interference-adjusted service-time estimate (backfilling).
        self.estimate = estimate


class _SSource:
    """One closed-loop source: a think-time variate bound to a job class."""

    __slots__ = ("variate", "class_index")

    def __init__(self, variate, class_index: int) -> None:
        self.variate = variate
        self.class_index = class_index


def _station_behavior(spec: StationSpec) -> OwnerBehavior:
    """Owner behaviour of one station (mirrors the event-driven backend)."""
    if spec.demand_kind == "trace":
        assert spec.trace is not None  # StationSpec validation guarantees it
        return OwnerBehavior.from_trace(spec.trace)
    return OwnerBehavior.from_spec(
        spec.owner, spec.demand_kind, **dict(spec.demand_kwargs)
    )


def _policy_role(policy: SchedulingPolicy) -> tuple[int, int]:
    """Map a policy instance to its kernel transition table (+ chunk count)."""
    if isinstance(policy, StaticPartition):
        return _ROLE_STATIC, 0
    if isinstance(policy, SelfScheduling):
        return _ROLE_WORKER, policy.chunks_per_station
    if isinstance(policy, MigrateOnOwnerArrival):
        return _ROLE_ITEM, 0
    raise ValueError(
        f"the event kernel has no transition table for policy "
        f"{policy.name!r}; supported policies: {list(KERNEL_POLICIES)}"
    )


class EventKernel:
    """Array-based executor shared across the runs of one sweep batch.

    The instance owns the reusable agenda heap; all per-run state lives in
    locals of :meth:`run_closed` / :meth:`run_open`, so one kernel can be
    shared across grid points (cross-point batching) with every point still
    drawing from its own freshly seeded :class:`StreamRegistry` — results
    are independent of batch composition.

    ``tap`` is the generic observer hook (``None`` by default): any callable
    ``tap(kind, sim_time, **details)``, invoked at each scheduling decision
    (owner arrivals, preemptions, migrations, open-system admissions).  The
    kernel never imports the telemetry layer — the backend wires an
    installed :class:`repro.obs.SimEventTap` in (lint rule SL007 enforces
    the direction).  Taps observe only: they draw no randomness and reorder
    no events, so a tapped run stays bitwise-identical.
    """

    __slots__ = ("_heap", "_agenda", "tap")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        #: The space-shared loop drives this :class:`EventAgenda` (reset at
        #: the top of every :meth:`run_space_shared`, so back-to-back grid
        #: points in one batch cannot leak agenda state into each other).
        self._agenda = EventAgenda()
        self.tap: Callable[..., None] | None = None

    # -- public entry points -------------------------------------------------
    def run_closed(
        self, config, streams: StreamRegistry | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Closed system: ``num_jobs`` back-to-back jobs on one cluster.

        Returns ``(job_times, task_times, measured_owner_utilization)``,
        bitwise-equal to the corresponding fields of the ``event-driven``
        backend's :class:`SimulationResult`.
        """
        return self._run(config, streams, open_mode=False)

    def run_open(
        self, config, streams: StreamRegistry | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
        """Open system: a classless stream of ``num_jobs`` arrivals.

        Returns ``(arrival_times, start_times, end_times, demands,
        measured_owner_utilization)``, bitwise-equal to the corresponding
        fields of the ``open-system`` backend's :class:`OpenSystemResult`.
        """
        return self._run(config, streams, open_mode=True)

    # -- the flat event loop -------------------------------------------------
    def _run(self, config, streams, open_mode: bool):
        cfg = config
        scenario: ScenarioSpec = cfg.effective_scenario
        workstations: int = cfg.workstations
        num_jobs: int = cfg.num_jobs
        imbalance: float = scenario.imbalance
        job_demand: float = cfg.job_demand

        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        role, chunks_per_station = _policy_role(policy)

        if streams is None:
            streams = StreamRegistry(cfg.seed)

        heap = self._heap
        heap.clear()
        tie = 0
        now = 0.0
        tap = self.tap  # observer hook, hoisted off the hot path

        # Per-station owner + CPU state (parallel lists indexed by station).
        think_v: list = [None] * workstations
        demand_v: list = [None] * workstations
        owner_rng: list = [None] * workstations
        prebatch = [False] * workstations
        think_buf: list = [()] * workstations
        think_cur = [0] * workstations
        owner_pending = [0.0] * workstations  # demand drawn at the last wake
        busy = [False] * workstations
        busy_start = [0.0] * workstations
        area = [0.0] * workstations  # owner-busy time-weighted area
        util = [0.0] * workstations  # static utilization (migration target order)
        holder: list = [None] * workstations  # None | _OWNER_HOLDER | _Task
        cpu_queue: list[deque] = [deque() for _ in range(workstations)]

        # Owner processes start in station order (oracle: _build_cluster loop).
        for w, spec in enumerate(scenario.stations):
            behavior = _station_behavior(spec)
            rng = streams.stream(f"owner-{w}")
            util[w] = behavior.utilization
            if behavior.is_idle:
                continue  # Workstation.start_owner never launches idle owners
            think = behavior.think_time
            demand = behavior.demand
            think_v[w] = think
            demand_v[w] = demand
            owner_rng[w] = rng
            # Pre-drawing the think stream is sound only while nothing else
            # draws from this station's generator — i.e. the demand variate
            # is drawless.  Trace replays (SequenceVariate) are drawless
            # themselves, so scalar sampling costs nothing there.
            prebatch[w] = bool(
                getattr(think, "draws_rng", True)
                and hasattr(think, "sample_batch")
                and not getattr(demand, "draws_rng", True)
            )
            heappush(heap, (0.0, URGENT, tie, _OWNER_INIT, w, 0))
            tie += 1
        placement_rng = streams.stream("placement")

        def think_sample(w: int) -> float:
            if prebatch[w]:
                buf = think_buf[w]
                i = think_cur[w]
                if i >= len(buf):
                    buf = think_v[w].sample_batch(owner_rng[w], _THINK_BLOCK).tolist()
                    think_buf[w] = buf
                    i = 0
                think_cur[w] = i + 1
                return buf[i]
            return think_v[w].sample(owner_rng[w])

        # Mode-specific setup: the closed driver / the open source+admission.
        if open_mode:
            spec_arrivals = scenario.arrivals
            if spec_arrivals is None:
                raise ValueError(
                    "the event kernel's open mode needs a scenario with a "
                    "job-arrival process; set ScenarioSpec.arrivals"
                )
            if spec_arrivals.is_space_shared:
                raise ValueError(
                    "space-shared (job-class) arrival specs run through "
                    "EventKernel.run_space_shared, not the classless loop"
                )
            arrival_rng = streams.stream("arrivals")
            job_demand_rng = streams.stream("job-demands")
            demand_variate = make_variate(
                spec_arrivals.demand_kind, job_demand, **dict(spec_arrivals.demand_kwargs)
            )
            mean_gap = spec_arrivals.mean_interarrival
            admit_cap = spec_arrivals.max_concurrent_jobs
            admit_users = 0
            admit_queue: deque[_Job] = deque()
            source_done = False
            jobs_done = 0
            arrival_times = np.empty(num_jobs, dtype=np.float64)
            start_times = np.empty(num_jobs, dtype=np.float64)
            end_times = np.empty(num_jobs, dtype=np.float64)
            job_demands = np.empty(num_jobs, dtype=np.float64)
            heappush(heap, (0.0, URGENT, tie, _SOURCE_INIT, None, 0))
            tie += 1
        else:
            next_job = 0
            job_times = np.empty(num_jobs, dtype=np.float64)
            task_times: list[float] = []
            # The driver's init pop immediately launches job 0 (or exits for
            # num_jobs == 0), exactly the JOB_EXIT continuation — reuse it.
            heappush(heap, (0.0, URGENT, tie, _JOB_EXIT, None, 0))
            tie += 1

        def request_cpu(t: _Task) -> None:
            """``cpu.request(priority=TASK_PRIORITY)``: grant if free, else FIFO."""
            nonlocal tie
            w = t.station
            if holder[w] is None:
                holder[w] = t
                t.serial += 1
                heappush(heap, (now, NORMAL, tie, _TASK_GRANT, t, t.serial))
                tie += 1
            else:
                cpu_queue[w].append(t)

        def release_cpu(w: int) -> None:
            """``Release``: dispatch the FIFO head, then the no-op completion."""
            nonlocal tie
            q = cpu_queue[w]
            if q:
                h = q.popleft()
                holder[w] = h
                h.serial += 1
                heappush(heap, (now, NORMAL, tie, _TASK_GRANT, h, h.serial))
                tie += 1
            else:
                holder[w] = None
            tie += 1  # the Release event itself (guaranteed no-op pop)

        def start_job(job: _Job, total_demand: float) -> None:
            """Launch one job's task processes (the policy's ``run_job`` head)."""
            nonlocal tie
            if imbalance == 0.0:
                demands = balanced_tasks(total_demand, workstations)
            else:
                demands = imbalanced_tasks(
                    total_demand, workstations, imbalance, placement_rng
                )
            job.pending = workstations
            tasks = job.tasks
            tasks.clear()
            if role == _ROLE_WORKER:
                total = float(np.sum(demands))
                num_chunks = chunks_per_station * workstations
                job.chunk = total / num_chunks
                job.chunks_left = num_chunks
                for w in range(workstations):
                    t = _Task(job, w)
                    tasks.append(t)
                    heappush(heap, (now, URGENT, tie, _TASK_INIT, t, 0))
                    tie += 1
            else:
                if role == _ROLE_ITEM:
                    job.active = [1] * workstations
                for w in range(workstations):
                    t = _Task(job, w)
                    t.remaining = float(demands[w])
                    tasks.append(t)
                    heappush(heap, (now, URGENT, tie, _TASK_INIT, t, 0))
                    tie += 1

        def end_attempt(t: _Task) -> None:
            """Continuation after a CPU attempt ends (service done or dust).

            Covers the policy-specific tail of the oracle's
            ``execute_task`` / ``worker`` / ``run_item`` generators once the
            current record's remaining work is ``<= 0`` — or, for the
            migration policy, after *any* step (its records are per-step).
            """
            nonlocal tie
            if role == _ROLE_STATIC:
                t.end = now
                heappush(heap, (now, NORMAL, tie, _TASK_EXIT, t, 0))
                tie += 1
                return
            if role == _ROLE_WORKER:
                job = t.job
                if t.frag_count == 0:
                    t.first_start = t.rec_start
                t.frag_count += 1
                t.end = now
                if job.chunks_left > 0:
                    job.chunks_left -= 1
                    t.remaining = job.chunk
                    t.rec_start = now
                    request_cpu(t)
                else:
                    heappush(heap, (now, NORMAL, tie, _TASK_EXIT, t, 0))
                    tie += 1
                return
            # _ROLE_ITEM: one execute_task_step record ended.
            if t.first_start is None:
                t.first_start = t.rec_start
            if t.remaining <= 0:
                t.end = now
                t.job.active[t.station] -= 1
                heappush(heap, (now, NORMAL, tie, _TASK_EXIT, t, 0))
                tie += 1
                return
            # Preempted with work left: migrate to the least-utilized idle
            # station (ties by index), else resume in place.
            active = t.job.active
            cur = t.station
            best = -1
            for i in range(workstations):
                if i == cur or active[i] > 0:
                    continue
                if best < 0 or util[i] < util[best]:
                    best = i
            if best >= 0:
                active[cur] -= 1
                active[best] += 1
                t.station = best
                if tap is not None:
                    tap(
                        "task-migrated",
                        now,
                        job=t.job.index,
                        source=cur,
                        target=best,
                        remaining=t.remaining,
                    )
            t.rec_start = now
            request_cpu(t)

        # ---- dispatch loop (branches roughly frequency-ordered) ----
        while True:
            entry = heappop(heap)
            now = entry[0]
            kind = entry[3]
            if kind == _TASK_GRANT:
                t = entry[4]
                if entry[5] != t.serial:
                    continue  # stale grant (task was interrupted meanwhile)
                t.started = now
                heappush(
                    heap, (now + t.remaining, NORMAL, tie, _TASK_DONE, t, t.serial)
                )
                tie += 1
            elif kind == _TASK_DONE:
                t = entry[4]
                if entry[5] != t.serial:
                    continue  # stale completion (interrupted mid-service)
                t.remaining = 0.0
                t.started = None
                release_cpu(t.station)
                end_attempt(t)
            elif kind == _OWNER_WAKE:
                w = entry[4]
                demand = demand_v[w].sample(owner_rng[w])
                if demand < 0.0:
                    demand = 0.0  # max(0.0, sample)
                if demand == 0.0:
                    think = think_sample(w)
                    if think == _INF:
                        tie += 1  # owner process returns, unobserved
                    else:
                        heappush(
                            heap,
                            (
                                now + (think if think > 0.0 else 0.0),
                                NORMAL,
                                tie,
                                _OWNER_WAKE,
                                w,
                                0,
                            ),
                        )
                        tie += 1
                    continue
                owner_pending[w] = demand
                if tap is not None:
                    tap("owner-arrival", now, station=w, demand=demand)
                h = holder[w]
                if h is not None:
                    # Preempt the task holder: the oracle enqueues the
                    # victim's interrupt (URGENT) before dispatching the
                    # owner's grant (NORMAL).
                    h.serial += 1
                    heappush(heap, (now, URGENT, tie, _TASK_INTERRUPT, h, 0))
                    tie += 1
                holder[w] = _OWNER_HOLDER
                heappush(heap, (now, NORMAL, tie, _OWNER_GRANT, w, 0))
                tie += 1
            elif kind == _OWNER_GRANT:
                w = entry[4]
                busy[w] = True
                busy_start[w] = now
                heappush(
                    heap, (now + owner_pending[w], NORMAL, tie, _OWNER_DONE, w, 0)
                )
                tie += 1
            elif kind == _OWNER_DONE:
                w = entry[4]
                area[w] += now - busy_start[w]
                busy[w] = False
                release_cpu(w)
                think = think_sample(w)
                if think == _INF:
                    tie += 1  # owner process returns, unobserved
                else:
                    heappush(
                        heap,
                        (
                            now + (think if think > 0.0 else 0.0),
                            NORMAL,
                            tie,
                            _OWNER_WAKE,
                            w,
                            0,
                        ),
                    )
                    tie += 1
            elif kind == _TASK_INTERRUPT:
                t = entry[4]
                if t.started is not None:
                    t.remaining -= now - t.started
                    t.started = None
                if tap is not None:
                    tap(
                        "task-preempted",
                        now,
                        job=t.job.index,
                        station=t.station,
                        remaining=t.remaining,
                    )
                tie += 1  # Release of the interrupted request (no-op pop)
                if role == _ROLE_ITEM:
                    end_attempt(t)  # per-step record: always ends here
                elif t.remaining > 0:
                    request_cpu(t)  # re-request behind the owner, FIFO
                else:
                    end_attempt(t)  # dust: float rounding finished the work
            elif kind == _TASK_INIT:
                t = entry[4]
                if role == _ROLE_WORKER:
                    job = t.job
                    if job.chunks_left <= 0:
                        # Chunk queue already drained: worker exits at birth.
                        heappush(heap, (now, NORMAL, tie, _TASK_EXIT, t, 0))
                        tie += 1
                        continue
                    job.chunks_left -= 1
                    t.remaining = job.chunk
                t.rec_start = now
                request_cpu(t)
            elif kind == _TASK_EXIT:
                job = entry[4].job
                job.pending -= 1
                if job.pending == 0:
                    heappush(heap, (now, NORMAL, tie, _JOB_ALLOF, job, 0))
                    tie += 1
            elif kind == _JOB_ALLOF:
                job = entry[4]
                if open_mode:
                    end_times[job.index] = now
                    # Admission release: hand the slot to the FIFO head.
                    if admit_queue:
                        nxt = admit_queue.popleft()
                        heappush(heap, (now, NORMAL, tie, _ADMIT_GRANT, nxt, 0))
                        tie += 1
                    else:
                        admit_users -= 1
                    tie += 1  # the admission Release event (no-op pop)
                else:
                    end = -_INF
                    if role == _ROLE_STATIC:
                        for t in job.tasks:
                            task_times.append(t.end - t.rec_start)
                            if t.end > end:
                                end = t.end
                    elif role == _ROLE_WORKER:
                        for t in job.tasks:
                            if t.frag_count == 0:
                                continue  # station never pulled a chunk
                            task_times.append(t.end - t.first_start)
                            if t.end > end:
                                end = t.end
                    else:
                        for t in job.tasks:
                            s = t.first_start
                            task_times.append(
                                t.end - (s if s is not None else 0.0)
                            )
                            if t.end > end:
                                end = t.end
                    job_times[job.index] = end - job.start
                heappush(heap, (now, NORMAL, tie, _JOB_EXIT, job, 0))
                tie += 1
            elif kind == _JOB_EXIT:
                if open_mode:
                    jobs_done += 1
                    if source_done and jobs_done >= num_jobs:
                        break  # the drain AllOf fires: simulation over
                else:
                    # The closed driver's loop: next job, or the driver exits.
                    if next_job < num_jobs:
                        job = _Job(next_job)
                        next_job += 1
                        heappush(heap, (now, URGENT, tie, _JOB_INIT, job, 0))
                        tie += 1
                    else:
                        heappush(heap, (now, NORMAL, tie, _DRIVER_EXIT, None, 0))
                        tie += 1
            elif kind == _JOB_INIT:
                job = entry[4]
                if open_mode:
                    # run_one_job's admission request (plain FIFO resource).
                    if admit_users < admit_cap:
                        admit_users += 1
                        heappush(heap, (now, NORMAL, tie, _ADMIT_GRANT, job, 0))
                        tie += 1
                    else:
                        admit_queue.append(job)
                        if tap is not None:
                            tap(
                                "job-queued",
                                now,
                                job=job.index,
                                queue_depth=len(admit_queue),
                            )
                else:
                    job.start = now
                    start_job(job, job_demand)
            elif kind == _ADMIT_GRANT:
                job = entry[4]
                if tap is not None:
                    tap("job-admitted", now, job=job.index)
                start_times[job.index] = now
                job.start = now
                start_job(job, job.demand)
            elif kind == _SOURCE_WAKE:
                j = entry[4]
                demand = float(demand_variate.sample(job_demand_rng))
                while demand <= 0.0:
                    demand = float(demand_variate.sample(job_demand_rng))
                arrival_times[j] = now
                job_demands[j] = demand
                job = _Job(j)
                job.demand = demand
                heappush(heap, (now, URGENT, tie, _JOB_INIT, job, 0))
                tie += 1
                j += 1
                if j < num_jobs:
                    gap = spec_arrivals.interarrival(j)
                    if gap is None:
                        gap = float(arrival_rng.exponential(mean_gap))
                    heappush(heap, (now + gap, NORMAL, tie, _SOURCE_WAKE, j, 0))
                    tie += 1
                else:
                    heappush(heap, (now, NORMAL, tie, _SOURCE_EXIT, None, 0))
                    tie += 1
            elif kind == _SOURCE_EXIT:
                source_done = True
                if jobs_done >= num_jobs:
                    break  # no in-flight jobs left to drain
            elif kind == _SOURCE_INIT:
                if num_jobs <= 0:
                    heappush(heap, (now, NORMAL, tie, _SOURCE_EXIT, None, 0))
                    tie += 1
                    continue
                gap = spec_arrivals.interarrival(0)
                if gap is None:
                    gap = float(arrival_rng.exponential(mean_gap))
                heappush(heap, (now + gap, NORMAL, tie, _SOURCE_WAKE, 0, 0))
                tie += 1
            elif kind == _OWNER_INIT:
                w = entry[4]
                think = think_sample(w)
                if think == _INF:
                    tie += 1  # owner process returns immediately, unobserved
                else:
                    heappush(
                        heap,
                        (
                            now + (think if think > 0.0 else 0.0),
                            NORMAL,
                            tie,
                            _OWNER_WAKE,
                            w,
                            0,
                        ),
                    )
                    tie += 1
            else:  # _DRIVER_EXIT
                break

        heap.clear()

        # Finalize the owner-busy monitors at the stop time (oracle:
        # measured_owner_utilization() -> finalize(env.now) / time_average).
        measured = []
        for w in range(workstations):
            a = area[w]
            if busy[w]:
                a += now - busy_start[w]
            measured.append(0.0 if now <= 0 else a / now)
        measured_util = float(np.mean(measured))

        if open_mode:
            return arrival_times, start_times, end_times, job_demands, measured_util
        return (
            job_times,
            np.asarray(task_times, dtype=np.float64),
            measured_util,
        )

    # -- the space-shared admission loop -------------------------------------
    def run_space_shared(
        self, config, streams: StreamRegistry | None = None
    ) -> tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        float,
    ]:
        """Moldable job classes space-sharing the cluster under admission.

        Flattens the ``open-system`` oracle's ``_run_space_shared`` — the
        :class:`~repro.cluster.admission.AdmissionController` decision loop
        (queue state, exclusive station-subset allocation, EASY reservation /
        backfill checks, preemptive kill-and-requeue restarts) plus the
        open/closed job sources — into transition tables driven by the
        kernel's :class:`EventAgenda`.  Returns ``(arrival_times,
        start_times, end_times, demands, widths, class_ids, restarts,
        measured_owner_utilization)``, bitwise-equal to the corresponding
        fields of the oracle's :class:`OpenSystemResult`.

        Admission-controller mapping (on top of the module-level contract):

        =====================================  ==============================
        oracle (controller + desim)            kernel (flat loop)
        =====================================  ==============================
        ``ticket.event.succeed``               ``ADMIT_TICKET`` push, stamped
                                               with the job's ``serial``
        ``process.interrupt`` on a task        ``ADMIT_KILL_TASK`` urgent push
        killed task's failed termination       ``TASK_FAIL`` push; first one
                                               fails the join (``JOB_ABORT``)
        ``process.interrupt`` on the job       ``JOB_KILL`` urgent push (all
                                               tasks finished in-instant)
        detached AllOf firing after eviction   ``att.dead`` stale-skip
        source process / sources' AllOf        ``SRC_*`` kinds
        =====================================  ==============================
        """
        cfg = config
        scenario: ScenarioSpec = cfg.effective_scenario
        workstations: int = cfg.workstations
        num_jobs: int = cfg.num_jobs
        imbalance: float = scenario.imbalance
        job_demand: float = cfg.job_demand

        spec = scenario.arrivals
        if spec is None or not spec.is_space_shared:
            raise ValueError(
                "run_space_shared needs a scenario whose arrival spec defines "
                "job classes; use run_open for the classless stream"
            )
        classes = spec.job_classes
        for job_class in classes:
            if job_class.width > workstations:
                raise ValueError(
                    f"job class {job_class.name!r} requests width "
                    f"{job_class.width} on a {workstations}-station cluster"
                )
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        role, chunks_per_station = _policy_role(policy)
        admission = make_admission_policy(
            spec.admission_policy, **dict(spec.admission_kwargs)
        )
        # Flatten the policy object into the transition tables' scalars.
        adm_backfill = isinstance(admission, EasyBackfillAdmission)
        adm_priority = isinstance(admission, PriorityAdmission)
        preemptive = adm_priority and admission.preemptive
        runtime_factor = admission.runtime_factor if adm_backfill else 0.0

        if streams is None:
            streams = StreamRegistry(cfg.seed)

        agenda = self._agenda
        agenda.reset()
        now = 0.0
        tap = self.tap

        # Per-station owner + CPU state, identical to the classless loop.
        think_v: list = [None] * workstations
        demand_v: list = [None] * workstations
        owner_rng: list = [None] * workstations
        prebatch = [False] * workstations
        think_buf: list = [()] * workstations
        think_cur = [0] * workstations
        owner_pending = [0.0] * workstations
        busy = [False] * workstations
        busy_start = [0.0] * workstations
        area = [0.0] * workstations
        util = [0.0] * workstations
        holder: list = [None] * workstations
        cpu_queue: list[deque] = [deque() for _ in range(workstations)]

        for w, sspec in enumerate(scenario.stations):
            behavior = _station_behavior(sspec)
            rng = streams.stream(f"owner-{w}")
            util[w] = behavior.utilization
            if behavior.is_idle:
                continue
            think = behavior.think_time
            demand = behavior.demand
            think_v[w] = think
            demand_v[w] = demand
            owner_rng[w] = rng
            prebatch[w] = bool(
                getattr(think, "draws_rng", True)
                and hasattr(think, "sample_batch")
                and not getattr(demand, "draws_rng", True)
            )
            agenda.push(0.0, URGENT, _OWNER_INIT, w)
        # Stream creation order matches the oracle: owners, placement,
        # arrivals, job-demands, job-classes, think-times — all six created
        # unconditionally (a single-class mix draws nothing from the extras,
        # but their creation still advances the registry's spawn counter).
        placement_rng = streams.stream("placement")
        arrival_rng = streams.stream("arrivals")
        job_demand_rng = streams.stream("job-demands")
        class_rng = streams.stream("job-classes")
        think_rng = streams.stream("think-times")
        demand_variate = make_variate(
            spec.demand_kind, job_demand, **dict(spec.demand_kwargs)
        )
        mean_util = scenario.mean_utilization

        def think_sample(w: int) -> float:
            if prebatch[w]:
                buf = think_buf[w]
                i = think_cur[w]
                if i >= len(buf):
                    buf = think_v[w].sample_batch(owner_rng[w], _THINK_BLOCK).tolist()
                    think_buf[w] = buf
                    i = 0
                think_cur[w] = i + 1
                return buf[i]
            return think_v[w].sample(owner_rng[w])

        open_indices = spec.open_class_indices
        open_index_array = np.array(open_indices, dtype=np.int64)
        weights = np.array(
            [classes[index].weight for index in open_indices], dtype=np.float64
        )
        if weights.size:
            weights /= weights.sum()
        mean_gap = spec.mean_interarrival if open_indices else 0.0

        arrival_times = np.empty(num_jobs, dtype=np.float64)
        start_times = np.empty(num_jobs, dtype=np.float64)
        end_times = np.empty(num_jobs, dtype=np.float64)
        job_demands = np.empty(num_jobs, dtype=np.float64)
        widths = np.empty(num_jobs, dtype=np.float64)
        class_ids = np.empty(num_jobs, dtype=np.float64)
        restarts = np.zeros(num_jobs, dtype=np.float64)

        budget = num_jobs
        submitted = 0
        jobs_exited = 0
        sources_done = False

        # Admission-controller state, flattened: a sorted free-station list,
        # the waiting queue (policy order), and insertion-ordered running
        # records (EASY's release sort relies on dict insertion order plus
        # sort stability, exactly like the oracle's ``running.values()``).
        adm_free = list(range(workstations))
        adm_queue: list[_SJob] = []
        adm_running: dict[int, _SRun] = {}
        adm_seq = 0

        def estimate_service(job: _SJob) -> float:
            # The oracle's estimate_service lambda, verbatim float ops.
            return job.demand / (job.width * (1.0 - mean_util))

        def request_cpu(t: _STask) -> None:
            w = t.station
            if holder[w] is None:
                holder[w] = t
                t.serial += 1
                agenda.push(now, NORMAL, _TASK_GRANT, t, t.serial)
            else:
                cpu_queue[w].append(t)

        def release_cpu(w: int) -> None:
            q = cpu_queue[w]
            if q:
                h = q.popleft()
                holder[w] = h
                h.serial += 1
                agenda.push(now, NORMAL, _TASK_GRANT, h, h.serial)
            else:
                holder[w] = None
            agenda.tick()  # the Release event itself (guaranteed no-op pop)

        def adm_select() -> _SJob | None:
            """``AdmissionPolicy.select`` over the flattened queue state."""
            if not adm_queue:
                return None
            head = adm_queue[0]
            free = len(adm_free)
            if head.width <= free:
                return head
            if not adm_backfill:
                return None  # FCFS / priority: head-of-line blocking
            # EASY: the head's reservation (shadow time + spare width), then
            # the backfill scan over the rest of the queue.
            releases = sorted(
                adm_running.values(),
                key=lambda run: run.admitted_at + runtime_factor * run.estimate,
            )
            shadow = now
            extra = free
            available = free
            for run in releases:
                available += len(run.stations)
                if available >= head.width:
                    shadow = run.admitted_at + runtime_factor * run.estimate
                    if shadow < now:
                        shadow = now
                    extra = available - head.width
                    break
            for job in adm_queue[1:]:
                if job.width > free:
                    continue
                finish = now + runtime_factor * estimate_service(job)
                if finish <= shadow or job.width <= extra:
                    return job
            return None

        def adm_admit(job: _SJob) -> None:
            adm_queue.remove(job)
            allocated = adm_free[: job.width]
            del adm_free[: job.width]
            job.subset = allocated
            adm_running[job.index] = _SRun(job, allocated, now, estimate_service(job))
            # ticket.event.succeed(ticket): one enqueue, the ADMIT_TICKET pop.
            agenda.push(now, NORMAL, _ADMIT_TICKET, job, job.serial)

        def adm_preempt(run: _SRun) -> None:
            """Kill-and-requeue one running job (restart semantics).

            Interrupt enqueues mirror the oracle's per-station scan of
            ``list(cpu.users) + list(cpu.queue)``: the task holder first
            (owners are skipped — their requests carry OWNER_PRIORITY), then
            the queued tasks in FIFO order.  A victim with no live task left
            (all finished in this very instant) gets the interrupt on its job
            process instead.
            """
            killed = 0
            for w in run.stations:
                h = holder[w]
                if h is not None and h is not _OWNER_HOLDER:
                    agenda.push(now, URGENT, _ADMIT_KILL_TASK, h)
                    killed += 1
                for t in cpu_queue[w]:
                    agenda.push(now, URGENT, _ADMIT_KILL_TASK, t)
                    killed += 1
            if killed == 0:
                agenda.push(now, URGENT, _JOB_KILL, run.job)
            del adm_running[run.job.index]
            adm_free.extend(run.stations)
            adm_free.sort()

        def adm_dispatch() -> None:
            """``AdmissionController._dispatch``: select loop, then the plan."""
            while True:
                pick = adm_select()
                if pick is None:
                    break
                adm_admit(pick)
            if preemptive and adm_queue:
                head = adm_queue[0]
                victims = sorted(
                    (
                        run
                        for run in adm_running.values()
                        if run.job.priority < head.priority
                    ),
                    key=lambda run: (
                        run.job.priority,
                        -run.admitted_at,
                        -run.job.seq,
                    ),
                )
                reclaimed = len(adm_free)
                plan: list[_SRun] = []
                for run in victims:
                    plan.append(run)
                    reclaimed += len(run.stations)
                    if reclaimed >= head.width:
                        break
                else:
                    plan = []  # reclaiming everything still won't fit: no plan
                if plan:
                    for run in plan:
                        adm_preempt(run)
                    adm_admit(head)
                    while True:
                        pick = adm_select()
                        if pick is None:
                            break
                        adm_admit(pick)
            # Work conservation: stations can never all idle while jobs wait.
            assert not (adm_queue and not adm_running), (
                "admission stalled with an empty cluster and a non-empty queue"
            )

        def adm_request(job: _SJob) -> None:
            nonlocal adm_seq
            adm_seq += 1
            job.seq = adm_seq
            adm_queue.append(job)
            if adm_priority:
                adm_queue.sort(key=lambda j: (-j.priority, j.seq))
            adm_dispatch()
            if tap is not None and job.subset is None:
                tap("job-queued", now, job=job.index, queue_depth=len(adm_queue))

        def adm_release(job: _SJob) -> None:
            run = adm_running.pop(job.index)
            adm_free.extend(run.stations)
            adm_free.sort()
            adm_dispatch()

        def take_budget() -> bool:
            nonlocal budget
            if budget <= 0:
                return False
            budget -= 1
            return True

        def submit(class_index: int) -> _SJob:
            nonlocal submitted
            demand = float(demand_variate.sample(job_demand_rng))
            while demand <= 0.0:
                demand = float(demand_variate.sample(job_demand_rng))
            job_class = classes[class_index]
            job = _SJob(
                submitted, class_index, job_class.width, job_class.priority, demand
            )
            arrival_times[job.index] = now
            job_demands[job.index] = demand
            widths[job.index] = float(job_class.width)
            class_ids[job.index] = float(class_index)
            submitted += 1
            agenda.push(now, URGENT, _JOB_INIT, job)
            return job

        def start_attempt(job: _SJob) -> None:
            """The admitted ticket's continuation: split demands, launch tasks.

            The placement draw happens per *attempt* (oracle: inside the
            retry loop), so restarts re-split with fresh randomness.
            """
            width = job.width
            if imbalance == 0.0:
                demands = balanced_tasks(job.demand, width)
            else:
                demands = imbalanced_tasks(job.demand, width, imbalance, placement_rng)
            att = _SAttempt(job)
            job.att = att
            att.pending = width
            subset = job.subset
            if role == _ROLE_WORKER:
                total = float(np.sum(demands))
                num_chunks = chunks_per_station * width
                att.chunk = total / num_chunks
                att.chunks_left = num_chunks
                for pos in range(width):
                    agenda.push(now, URGENT, _TASK_INIT, _STask(att, pos, subset[pos]))
            else:
                if role == _ROLE_ITEM:
                    att.active = [1] * width
                for pos in range(width):
                    t = _STask(att, pos, subset[pos])
                    t.remaining = float(demands[pos])
                    agenda.push(now, URGENT, _TASK_INIT, t)

        def end_attempt(t: _STask) -> None:
            """Continuation after a CPU attempt ends (subset-scoped)."""
            att = t.att
            if role == _ROLE_STATIC:
                agenda.push(now, NORMAL, _TASK_EXIT, t)
                return
            if role == _ROLE_WORKER:
                if att.chunks_left > 0:
                    att.chunks_left -= 1
                    t.remaining = att.chunk
                    request_cpu(t)
                else:
                    agenda.push(now, NORMAL, _TASK_EXIT, t)
                return
            # _ROLE_ITEM: one execute_task_step record ended.
            if t.remaining <= 0:
                att.active[t.pos] -= 1
                agenda.push(now, NORMAL, _TASK_EXIT, t)
                return
            # Preempted with work left: migrate within the job's subset to the
            # least-utilized idle position (ties by position), else resume.
            active = att.active
            subset = att.job.subset
            cur = t.pos
            best = -1
            for i in range(len(subset)):
                if i == cur or active[i] > 0:
                    continue
                if best < 0 or util[subset[i]] < util[subset[best]]:
                    best = i
            if best >= 0:
                active[cur] -= 1
                active[best] += 1
                if tap is not None:
                    tap(
                        "task-migrated",
                        now,
                        job=att.job.index,
                        source=subset[cur],
                        target=subset[best],
                        remaining=t.remaining,
                    )
                t.pos = best
                t.station = subset[best]
            request_cpu(t)

        # Sources start after the owners, open first (oracle process order).
        sources_left = 0
        if open_indices:
            agenda.push(0.0, URGENT, _SRC_OPEN_INIT)
            sources_left += 1
        for class_index in spec.closed_class_indices:
            job_class = classes[class_index]
            for _member in range(job_class.population):
                agenda.push(
                    0.0,
                    URGENT,
                    _SRC_CLOSED_INIT,
                    _SSource(
                        make_variate(
                            job_class.think_time_kind,
                            job_class.think_time,
                            **dict(job_class.think_time_kwargs),
                        ),
                        class_index,
                    ),
                )
                sources_left += 1
        multi_source = sources_left > 1

        # ---- dispatch loop (branches roughly frequency-ordered) ----
        # With no sources at all (every class empty of arrivals) the loop is
        # skipped outright: owners alone never advance the interesting state,
        # and the measured utilizations are all zero at ``now == 0``.
        halted = sources_left == 0
        while not halted:
            entry = agenda.pop()
            now = entry[0]
            kind = entry[3]
            if kind == _TASK_GRANT:
                t = entry[4]
                if entry[5] != t.serial:
                    continue  # stale grant (interrupted / killed meanwhile)
                t.started = now
                agenda.push(now + t.remaining, NORMAL, _TASK_DONE, t, t.serial)
            elif kind == _TASK_DONE:
                t = entry[4]
                if entry[5] != t.serial:
                    continue  # stale completion (interrupted mid-service)
                t.remaining = 0.0
                t.started = None
                release_cpu(t.station)
                end_attempt(t)
            elif kind == _OWNER_WAKE:
                w = entry[4]
                demand = demand_v[w].sample(owner_rng[w])
                if demand < 0.0:
                    demand = 0.0  # max(0.0, sample)
                if demand == 0.0:
                    think = think_sample(w)
                    if think == _INF:
                        agenda.tick()  # owner process returns, unobserved
                    else:
                        agenda.push(
                            now + (think if think > 0.0 else 0.0),
                            NORMAL,
                            _OWNER_WAKE,
                            w,
                        )
                    continue
                owner_pending[w] = demand
                if tap is not None:
                    tap("owner-arrival", now, station=w, demand=demand)
                h = holder[w]
                if h is not None:
                    h.serial += 1
                    agenda.push(now, URGENT, _TASK_INTERRUPT, h)
                holder[w] = _OWNER_HOLDER
                agenda.push(now, NORMAL, _OWNER_GRANT, w)
            elif kind == _OWNER_GRANT:
                w = entry[4]
                busy[w] = True
                busy_start[w] = now
                agenda.push(now + owner_pending[w], NORMAL, _OWNER_DONE, w)
            elif kind == _OWNER_DONE:
                w = entry[4]
                area[w] += now - busy_start[w]
                busy[w] = False
                release_cpu(w)
                think = think_sample(w)
                if think == _INF:
                    agenda.tick()  # owner process returns, unobserved
                else:
                    agenda.push(
                        now + (think if think > 0.0 else 0.0), NORMAL, _OWNER_WAKE, w
                    )
            elif kind == _TASK_INTERRUPT:
                t = entry[4]
                if t.started is not None:
                    t.remaining -= now - t.started
                    t.started = None
                if tap is not None:
                    tap(
                        "task-preempted",
                        now,
                        job=t.att.job.index,
                        station=t.station,
                        remaining=t.remaining,
                    )
                agenda.tick()  # Release of the interrupted request (no-op pop)
                if role == _ROLE_ITEM:
                    end_attempt(t)
                elif t.remaining > 0:
                    request_cpu(t)
                else:
                    end_attempt(t)
            elif kind == _TASK_INIT:
                t = entry[4]
                if role == _ROLE_WORKER:
                    att = t.att
                    if att.chunks_left <= 0:
                        agenda.push(now, NORMAL, _TASK_EXIT, t)
                        continue
                    att.chunks_left -= 1
                    t.remaining = att.chunk
                request_cpu(t)
            elif kind == _TASK_EXIT:
                att = entry[4].att
                att.pending -= 1
                if att.pending == 0 and not att.failed:
                    # The join fires even for a dead attempt whose tasks all
                    # finished (the oracle's detached AllOf still succeeds);
                    # the JOB_ALLOF pop skips it.  A *failed* join never
                    # re-fires: the AllOf is already triggered.
                    agenda.push(now, NORMAL, _JOB_ALLOF, att)
            elif kind == _JOB_ALLOF:
                att = entry[4]
                if att.dead:
                    continue  # stale join: the job was evicted this instant
                job = att.job
                end_times[job.index] = now
                adm_release(job)
                agenda.push(now, NORMAL, _JOB_EXIT, job)
            elif kind == _JOB_EXIT:
                job = entry[4]
                src = job.waiter
                if src is not None:
                    # Resume the parked closed-loop source: next think time.
                    job.waiter = None
                    gap = float(src.variate.sample(think_rng))
                    agenda.push(now + max(gap, 0.0), NORMAL, _SRC_CLOSED_WAKE, src)
                jobs_exited += 1
                if sources_done and jobs_exited >= submitted:
                    break  # the drain AllOf fires: simulation over
            elif kind == _JOB_INIT:
                # run_one_job's first admission request (synchronous dispatch).
                adm_request(entry[4])
            elif kind == _ADMIT_TICKET:
                job = entry[4]
                if entry[5] != job.serial:
                    continue  # evicted while parked at this very ticket
                if tap is not None:
                    tap(
                        "job-admitted",
                        now,
                        job=job.index,
                        width=job.width,
                        stations=tuple(job.subset),
                    )
                start_times[job.index] = now
                start_attempt(job)
            elif kind == _ADMIT_KILL_TASK:
                t = entry[4]
                # The interrupt detaches the task from any pending grant /
                # completion (bumped at *pop* time: a grant legitimately
                # issued to this dying task during an earlier kill's release
                # must still be invalidated).
                t.serial += 1
                w = t.station
                if holder[w] is t:
                    release_cpu(w)  # context-manager release: grant next
                else:
                    cpu_queue[w].remove(t)  # queued request cancelled
                    agenda.tick()  # its Release completion (no-op pop)
                agenda.push(now, NORMAL, _TASK_FAIL, t)  # failed termination
            elif kind == _TASK_FAIL:
                att = entry[4].att
                if att.failed:
                    continue  # the join already failed: triggered, no-op
                att.failed = True
                agenda.push(now, NORMAL, _JOB_ABORT, att)  # the AllOf's fail
            elif kind == _JOB_ABORT:
                att = entry[4]
                job = att.job
                att.dead = True
                job.att = None
                job.subset = None
                restarts[job.index] += 1.0
                if tap is not None:
                    tap(
                        "job-restarted",
                        now,
                        job=job.index,
                        restarts=int(restarts[job.index]),
                    )
                adm_request(job)  # requeue with the full demand (restart)
            elif kind == _JOB_KILL:
                job = entry[4]
                job.serial += 1  # a pending admission ticket goes stale
                att = job.att
                if att is not None:
                    att.dead = True
                    job.att = None
                job.subset = None
                restarts[job.index] += 1.0
                if tap is not None:
                    tap(
                        "job-restarted",
                        now,
                        job=job.index,
                        restarts=int(restarts[job.index]),
                    )
                adm_request(job)
            elif kind == _SRC_OPEN_WAKE:
                index = entry[4]
                if len(open_indices) == 1:
                    class_index = open_indices[0]
                else:
                    class_index = int(class_rng.choice(open_index_array, p=weights))
                submit(class_index)
                if take_budget():
                    gap = spec.interarrival(index)
                    if gap is None:
                        gap = float(arrival_rng.exponential(mean_gap))
                    agenda.push(now + gap, NORMAL, _SRC_OPEN_WAKE, index + 1)
                else:
                    agenda.push(now, NORMAL, _SRC_EXIT)  # source termination
            elif kind == _SRC_CLOSED_WAKE:
                src = entry[4]
                if take_budget():
                    submit(src.class_index).waiter = src  # park on the job
                else:
                    agenda.push(now, NORMAL, _SRC_EXIT)  # source termination
            elif kind == _SRC_OPEN_INIT:
                if take_budget():
                    gap = spec.interarrival(0)
                    if gap is None:
                        gap = float(arrival_rng.exponential(mean_gap))
                    agenda.push(now + gap, NORMAL, _SRC_OPEN_WAKE, 1)
                else:
                    agenda.push(now, NORMAL, _SRC_EXIT)
            elif kind == _SRC_CLOSED_INIT:
                src = entry[4]
                gap = float(src.variate.sample(think_rng))
                agenda.push(now + max(gap, 0.0), NORMAL, _SRC_CLOSED_WAKE, src)
            elif kind == _SRC_EXIT:
                sources_left -= 1
                if sources_left == 0:
                    if multi_source:
                        # Last termination: the sources' AllOf succeeds.
                        agenda.push(now, NORMAL, _SRC_ALLOF)
                    else:
                        sources_done = True
                        if jobs_exited >= submitted:
                            break  # no in-flight jobs left to drain
            elif kind == _SRC_ALLOF:
                sources_done = True
                if jobs_exited >= submitted:
                    break
            else:  # _OWNER_INIT
                w = entry[4]
                think = think_sample(w)
                if think == _INF:
                    agenda.tick()  # owner process returns, unobserved
                else:
                    agenda.push(
                        now + (think if think > 0.0 else 0.0), NORMAL, _OWNER_WAKE, w
                    )

        # Finalize the owner-busy monitors at the stop time.
        measured = []
        for w in range(workstations):
            a = area[w]
            if busy[w]:
                a += now - busy_start[w]
            measured.append(0.0 if now <= 0 else a / now)
        measured_util = float(np.mean(measured))

        return (
            arrival_times,
            start_times,
            end_times,
            job_demands,
            widths,
            class_ids,
            restarts,
            measured_util,
        )
