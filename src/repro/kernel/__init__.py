"""``repro.kernel`` — array-based event kernel for the cluster hot path.

A drop-in executor for the event-driven back-ends that replaces the
per-event Python-object path (generator coroutines parked on
:mod:`repro.desim` events) with a flat agenda of heap tuples and integer
transition tables, while reproducing the oracle's results bit for bit:

:mod:`repro.kernel.agenda`
    The calendar-style event agenda: ``(when, priority, tie)`` ordering with
    the oracle's FIFO tie-breaking contract, plus tie *ticks* for elided
    no-op events.

:mod:`repro.kernel.machine`
    :class:`EventKernel`, the flattened closed- and open-system event loops
    (owner/task/job/source state machines instead of coroutines).

:mod:`repro.kernel.backend`
    The ``event-kernel`` registry backend and the :func:`kernel_blocker`
    routing probe.  Imported by :mod:`repro.backends` (which owns the
    registry), *not* here — importing ``repro.kernel`` alone must not drag
    the backend layer in, both to keep layering one-directional and to avoid
    an import cycle.
"""

from .agenda import NORMAL, URGENT, EventAgenda
from .machine import KERNEL_POLICIES, EventKernel

__all__ = [
    "EventAgenda",
    "EventKernel",
    "KERNEL_POLICIES",
    "NORMAL",
    "URGENT",
]
