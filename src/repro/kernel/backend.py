"""`event-kernel` backend: the flattened array kernel behind the registry.

Adapter between :class:`repro.kernel.machine.EventKernel` and the backend
protocol of :mod:`repro.backends.base`.  One registry entry covers both
result flavours: closed scenarios produce the ``event-driven`` backend's
:class:`SimulationResult`, open (classless job-stream) scenarios produce the
``open-system`` backend's :class:`OpenSystemResult` — in both cases
bitwise-identical to what the generator-based oracle computes for the same
config, just labelled ``mode="event-kernel"`` for provenance.

``run_batch`` is the cross-point batching entry: back-to-back grid points
share one :class:`EventKernel` instance (one reusable agenda heap), while
every point still seeds its own :class:`~repro.desim.StreamRegistry` from
its config, so batch composition cannot change any result.

:func:`kernel_blocker` is the capability probe the sweep engine uses to
decide routing: it names the reason a config cannot run on the kernel (an
unregistered scheduling policy), or returns ``None``.  Space-shared
admission scenarios (job classes under FCFS / EASY-backfill / priority
admission) run through :meth:`EventKernel.run_space_shared` and are fully
covered — no grid family falls back to scalar simulation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from ..backends.base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationConfig,
    SimulationResult,
    get_backend,
    register_backend,
)
from ..backends.open_system import OpenSystemResult
from ..obs import get_sim_tap
from ..stats import batch_means_interval
from .machine import KERNEL_POLICIES, EventKernel

__all__ = ["EventKernelBackend", "kernel_blocker"]


def kernel_blocker(config: SimulationConfig) -> str | None:
    """Why ``config`` cannot run on the event kernel (``None`` if it can).

    The returned string is the per-reason fallback label the sweep runner
    surfaces in :class:`~repro.engine.runner.SweepOutcome`.
    """
    scenario = config.effective_scenario
    if scenario.policy not in KERNEL_POLICIES:
        return f"no kernel transition table for policy ({scenario.policy})"
    return None


@register_backend
class EventKernelBackend(SimulationBackend):
    """Array-based replacement for the event-driven / open-system hot path."""

    name = "event-kernel"
    capabilities = BackendCapabilities(
        scheduling_policies=True,
        open_system=True,
        fractional_demand=True,
        trace_owners=True,
        batched=True,
    )

    def run(self):
        """Run one config on a fresh kernel instance."""
        return self._run_with(EventKernel())

    def _run_with(self, kernel: EventKernel):
        # Wire the process's installed sim-event tap (if any) into the
        # kernel's bare hook — the kernel itself never imports repro.obs.
        tap = get_sim_tap()
        if tap is not None:
            kernel.tap = tap.record
        cfg = self.config
        blocker = kernel_blocker(cfg)
        if blocker is not None:
            raise ValueError(f"the {self.name} backend cannot run this config: {blocker}")
        scenario = cfg.effective_scenario
        if scenario.is_open:
            spec = scenario.arrivals
            if spec is not None and spec.is_space_shared:
                (
                    arrivals,
                    starts,
                    ends,
                    demands,
                    widths,
                    class_ids,
                    restarts,
                    measured,
                ) = kernel.run_space_shared(cfg, self._streams)
                return OpenSystemResult(
                    config=cfg,
                    mode=self.name,
                    arrival_times=arrivals,
                    start_times=starts,
                    end_times=ends,
                    demands=demands,
                    measured_owner_utilization=measured,
                    widths=widths,
                    class_ids=class_ids,
                    restarts=restarts,
                )
            arrivals, starts, ends, demands, measured = kernel.run_open(
                cfg, self._streams
            )
            return OpenSystemResult(
                config=cfg,
                mode=self.name,
                arrival_times=arrivals,
                start_times=starts,
                end_times=ends,
                demands=demands,
                measured_owner_utilization=measured,
            )
        job_times, task_times, measured = kernel.run_closed(cfg, self._streams)
        return SimulationResult(
            config=cfg,
            mode=self.name,
            job_times=job_times,
            task_times=task_times,
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
            measured_owner_utilization=measured,
        )

    @classmethod
    def run_batch(
        cls,
        configs: Sequence[SimulationConfig],
        seed: int | None = None,
    ) -> list:
        """Run many configs on one shared kernel (cross-point batching).

        ``seed`` is accepted for protocol compatibility and ignored: every
        config carries its own seed (derived from its grid coordinates by the
        sweep builders), so results are independent of batch composition.
        """
        kernel = EventKernel()
        return [cls(config)._run_with(kernel) for config in configs]

    # -- NPZ cache hooks: delegate to the oracle backends' layouts ----------
    #
    # The kernel's results are bitwise-identical to the oracles', so sharing
    # their on-disk layouts (and, with cache schema >= 6, their fingerprint
    # digests) lets a sweep cached under either executor replay on the other.

    @classmethod
    def serialize_result(cls, result) -> dict[str, np.ndarray]:
        if isinstance(result, OpenSystemResult):
            return get_backend("open-system").serialize_result(result)
        return super().serialize_result(result)

    @classmethod
    def deserialize_result(cls, config: SimulationConfig, arrays: Mapping[str, np.ndarray]):
        if config.effective_scenario.is_open:
            result = get_backend("open-system").deserialize_result(config, arrays)
            return replace(result, mode=cls.name)
        return super().deserialize_result(config, arrays)
