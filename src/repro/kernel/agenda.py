"""Flat event agenda for the array kernel.

The agenda reproduces the ordering contract fixed by
:class:`repro.desim.AgendaEntry`: entries are totally ordered by
``(when, priority, tie)`` compared lexicographically, with
``URGENT (0) < NORMAL (1)`` and a single monotone tie counter that makes
equal ``(when, priority)`` entries FIFO in scheduling order.

Two departures from the oracle's agenda, neither observable in results:

* Entries are plain tuples ``(when, priority, tie, kind, payload, serial)``
  on a :mod:`heapq` heap instead of Python event objects — the payload slots
  carry small ints / kernel state records rather than generator-bearing
  events, and the tie counter guarantees comparisons never reach them.
* Events whose callbacks can never run (the oracle's
  :class:`~repro.desim.resources.Release` completions, and process
  terminations nobody waits on) are *elided*: :meth:`tick` advances the tie
  counter without pushing, keeping every subsequent tie value — and hence the
  full pop order — aligned with the oracle's counter while skipping the
  guaranteed no-op pops.

:meth:`snapshot` exposes the pending entries as a numpy record array (sorted
in pop order) for tests and diagnostics.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

__all__ = ["URGENT", "NORMAL", "EventAgenda"]

#: Priorities, numerically identical to :mod:`repro.desim.events`.
URGENT = 0
NORMAL = 1

#: Structured dtype of :meth:`EventAgenda.snapshot`.
_SNAPSHOT_DTYPE = np.dtype(
    [
        ("when", np.float64),
        ("priority", np.int64),
        ("tie", np.int64),
        ("kind", np.int64),
    ]
)


class EventAgenda:
    """Heap of ``(when, priority, tie, kind, payload, serial)`` entries."""

    __slots__ = ("_heap", "_tie")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._tie = 0

    def reset(self) -> None:
        """Drop all pending entries and restart the tie counter."""
        self._heap.clear()
        self._tie = 0

    def push(
        self, when: float, priority: int, kind: int, payload: Any = None, serial: int = 0
    ) -> None:
        """Schedule one occurrence (consumes one tie tick)."""
        tie = self._tie
        self._tie = tie + 1
        heapq.heappush(self._heap, (when, priority, tie, kind, payload, serial))

    def tick(self) -> None:
        """Consume one tie tick without scheduling anything.

        Mirrors oracle enqueues whose callbacks are guaranteed no-ops (Release
        completions, unobserved process terminations) so the counter — and the
        FIFO order of everything scheduled afterwards — stays aligned.
        """
        self._tie += 1

    def pop(self) -> tuple:
        """Remove and return the next entry in ``(when, priority, tie)`` order."""
        return heapq.heappop(self._heap)

    def peek(self) -> float:
        """Time of the next entry (``inf`` when empty), like ``Environment.peek``."""
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def tie(self) -> int:
        """Next tie value to be assigned (monotone, never reset mid-run)."""
        return self._tie

    def snapshot(self) -> np.ndarray:
        """Pending entries as a record array, sorted in pop order."""
        entries = sorted(self._heap)
        out = np.empty(len(entries), dtype=_SNAPSHOT_DTYPE)
        for i, (when, priority, tie, kind, _payload, _serial) in enumerate(entries):
            out[i] = (when, priority, tie, kind)
        return out
