"""Event-driven backend: explicit workstations, cycling owners, preemption.

Unlike the model-faithful discrete back-ends, owners here cycle continuously
(they may be mid-service when a task arrives), owner demands may follow any
variate — including the replay of a recorded
:class:`~repro.workload.OwnerActivityTrace` for stations declared with
``demand_kind="trace"`` — and the task split may be imbalanced.  This is the
back-end used by the ablation experiments.
"""

from __future__ import annotations

import numpy as np

from ..cluster.job import JobResult, balanced_tasks, imbalanced_tasks
from ..cluster.owner import OwnerBehavior
from ..cluster.policies import make_policy
from ..cluster.workstation import Workstation
from ..core.params import ScenarioSpec, StationSpec
from ..desim import Environment
from ..obs import get_sim_tap
from ..stats import batch_means_interval
from .base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationResult,
    _reject_open_scenario,
    register_backend,
)

__all__ = ["EventDrivenClusterSimulator"]


def _split_demands(
    total_demand: float,
    scenario: ScenarioSpec,
    workstations: int,
    placement_rng: np.random.Generator,
) -> np.ndarray:
    """Per-station task demands of one job under the scenario's placement.

    Shared by the closed and open event-driven back-ends — the bitwise
    open-to-closed reduction relies on both splitting jobs identically.
    """
    if scenario.imbalance == 0.0:
        return balanced_tasks(total_demand, workstations)
    return imbalanced_tasks(
        total_demand, workstations, scenario.imbalance, placement_rng
    )


def _station_behavior(spec: StationSpec) -> OwnerBehavior:
    """Owner behaviour of one station: fitted distributions, or a trace replay."""
    if spec.demand_kind == "trace":
        assert spec.trace is not None  # StationSpec validation guarantees it
        return OwnerBehavior.from_trace(spec.trace)
    return OwnerBehavior.from_spec(
        spec.owner, spec.demand_kind, **dict(spec.demand_kwargs)
    )


@register_backend
class EventDrivenClusterSimulator(SimulationBackend):
    """Full process-oriented simulation with explicit workstations and owners."""

    name = "event-driven"
    capabilities = BackendCapabilities(
        scheduling_policies=True, fractional_demand=True, trace_owners=True
    )

    def _build_cluster(self, env: Environment) -> list[Workstation]:
        # Wire the process's installed sim-event tap (if any) into each
        # station's bare hook — the cluster layer never imports repro.obs.
        tap = get_sim_tap()
        stations = []
        for w, spec in enumerate(self.config.effective_scenario.stations):
            behavior = _station_behavior(spec)
            station = Workstation(
                env, w, behavior, self._streams.stream(f"owner-{w}")
            )
            if tap is not None:
                station.tap = tap.record
            station.start_owner()
            stations.append(station)
        return stations

    def run(self) -> SimulationResult:
        """Run ``num_jobs`` back-to-back jobs on a persistent cluster."""
        cfg = self.config
        scenario = cfg.effective_scenario
        _reject_open_scenario(scenario, self.name)
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        env = Environment()
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")

        job_times = np.empty(cfg.num_jobs, dtype=np.float64)
        task_times: list[float] = []
        results: list[JobResult] = []

        def run_one_job(job_id: int):
            start = env.now
            demands = _split_demands(
                cfg.job_demand, scenario, cfg.workstations, placement_rng
            )
            tasks = yield from policy.run_job(env, stations, demands)
            results.append(JobResult(job_id=job_id, start_time=start, tasks=tasks))

        def driver():
            for job_id in range(cfg.num_jobs):
                yield env.process(run_one_job(job_id))

        driver_proc = env.process(driver())
        # Owners cycle forever, so run only until the driver has finished all jobs.
        env.run(until=driver_proc)

        for i, job in enumerate(results):
            job_times[i] = job.response_time
            task_times.extend(task.execution_time for task in job.tasks)

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return SimulationResult(
            config=cfg,
            mode=self.name,
            job_times=job_times,
            task_times=np.asarray(task_times, dtype=np.float64),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
            measured_owner_utilization=measured_util,
        )
