"""Vectorised Monte-Carlo backend: direct sampling of the model's closed form.

The per-config :meth:`MonteCarloSampler.run` draws the full per-task binomial
interruption tensor exactly like the seed implementation (bitwise-stable
against the discrete-time cross-checks).  The multi-config
:meth:`MonteCarloSampler.run_batch` is the sweep engine's fast path: instead
of drawing every one of the ``k x num_jobs x W`` per-task binomials, it
samples each job's completion time *directly* from the exact max-distribution
of the job — one inverse-CDF lookup per job per group of identical stations —
which is what makes vectorized heterogeneous sweeps several times faster than
the scalar per-config path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..desim import StreamRegistry
from ..stats import batch_means_interval
from .base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationConfig,
    SimulationResult,
    _integral_task_demand,
    _static_scenario,
    register_backend,
)

__all__ = ["MonteCarloSampler"]


def _binomial_cdf(trials: int, probability: float) -> np.ndarray:
    """CDF of ``Binomial(trials, probability)`` over 0..trials.

    The final entry is pinned to exactly 1.0 so an inverse-CDF lookup can
    never index past the support because of float round-off in the tail.
    """
    cdf = _scipy_stats.binom.cdf(np.arange(trials + 1), trials, probability)
    cdf = np.asarray(cdf, dtype=np.float64)
    cdf[-1] = 1.0
    return cdf


@register_backend
class MonteCarloSampler(SimulationBackend):
    """Vectorised direct sampler of the analytical model's closed form."""

    name = "monte-carlo"
    capabilities = BackendCapabilities(batched=True)

    def sample_interruptions(self, num_jobs: int | None = None) -> np.ndarray:
        """Sample the per-task interruption counts, shape ``(num_jobs, W)``.

        Station ``w``'s count is ``Binomial(T, P_w)``; for a homogeneous
        scenario all stations share one ``P`` and the draw is bit-for-bit the
        classic homogeneous sample (numpy consumes the stream identically for
        a scalar and an equal-valued vector ``p``).
        """
        cfg = self.config
        scenario = _static_scenario(cfg, self.name)
        probabilities = np.array(
            [station.request_probability for station in scenario.stations]
        )
        rng = self._streams.stream("monte-carlo")
        n = num_jobs if num_jobs is not None else cfg.num_jobs
        t = _integral_task_demand(cfg.task_demand, self.name)
        return rng.binomial(t, probabilities, size=(n, cfg.workstations))

    def run(self) -> SimulationResult:
        """Sample ``num_jobs`` jobs and return the estimates."""
        cfg = self.config
        scenario = _static_scenario(cfg, self.name)
        owner_demands = np.array(
            [station.owner.demand for station in scenario.stations]
        )
        t = _integral_task_demand(cfg.task_demand, self.name)
        interruptions = self.sample_interruptions()
        task_times = t + interruptions * owner_demands
        job_times = task_times.max(axis=1).astype(np.float64)
        return SimulationResult(
            config=cfg,
            mode=self.name,
            job_times=job_times,
            task_times=task_times.ravel().astype(np.float64),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
        )

    @classmethod
    def run_batch(
        cls,
        configs: Sequence[SimulationConfig],
        seed: int | None = None,
    ) -> list[SimulationResult]:
        """Sample several configs sharing one ``(W, T)`` cell in one fast pass.

        A sweep evaluates the same ``(W, T, num_jobs)`` grid cell under ``k``
        different owner mixes — homogeneous utilization curves as well as
        heterogeneous (static-policy) scenarios, each contributing its
        per-station probability row.  Rather than drawing the full
        ``k x num_jobs x W`` per-task binomial tensor, this path samples each
        job's completion time directly from its *exact* distribution: the
        stations of a config are grouped by identical ``(P, O)``; the maximum
        task time over a group of ``m`` such stations has CDF ``F^m`` (with
        ``F`` the binomial task-time CDF), so one uniform draw plus an
        inverse-CDF table lookup yields the group maximum, and the job time
        is the max over the (few) groups instead of over all ``W`` stations.

        Statistically identical to per-config :meth:`run` calls — the
        marginal job-time distribution is exact — but *not* bitwise (the
        batch shares a single stream seeded from ``seed``, default: the first
        config's seed).  Task times are reported as ``num_jobs`` samples from
        the per-station mixture (one randomly placed task per job) rather
        than the scalar path's ``num_jobs x W``; the estimator of ``E_t`` is
        unbiased either way.
        """
        if not configs:
            return []
        first = configs[0]
        t = _integral_task_demand(first.task_demand, cls.name)
        for cfg in configs[1:]:
            if (
                cfg.workstations != first.workstations
                or float(cfg.task_demand) != float(first.task_demand)
                or cfg.num_jobs != first.num_jobs
                or cfg.num_batches != first.num_batches
                or cfg.confidence != first.confidence
            ):
                raise ValueError(
                    "run_batch requires configs sharing workstations, "
                    "task_demand, num_jobs, num_batches and confidence; "
                    f"got {cfg!r} vs {first!r}"
                )
        scenarios = [_static_scenario(cfg, cls.name) for cfg in configs]
        streams = StreamRegistry(seed if seed is not None else first.seed)
        rng = streams.stream("monte-carlo-batch")
        n, workstations = first.num_jobs, first.workstations
        cdf_cache: dict[float, np.ndarray] = {}

        def base_cdf(p: float) -> np.ndarray:
            if p not in cdf_cache:
                cdf_cache[p] = _binomial_cdf(t, p)
            return cdf_cache[p]

        results: list[SimulationResult] = []
        for cfg, scenario in zip(configs, scenarios):
            pairs = [
                (station.request_probability, station.owner.demand)
                for station in scenario.stations
            ]
            groups: dict[tuple[float, float], int] = {}
            for pair in pairs:
                groups[pair] = groups.get(pair, 0) + 1
            # Idle stations (P = 0) contribute exactly t, the floor every
            # task time already satisfies, so they need no draws at all.
            job_times = np.full(n, float(t))
            for (p, demand), members in groups.items():
                if p == 0.0:
                    continue
                table = base_cdf(p) ** members
                table[-1] = 1.0
                counts = np.searchsorted(table, rng.random(n), side="left")
                np.maximum(job_times, t + counts * demand, out=job_times)
            # One representative task per job, placed uniformly at random.
            group_index = {pair: i for i, pair in enumerate(groups)}
            group_of_station = np.array(
                [group_index[pair] for pair in pairs], dtype=np.int64
            )
            placed = group_of_station[rng.integers(0, workstations, size=n)]
            task_times = np.full(n, float(t))
            for index, (p, demand) in enumerate(groups):
                mask = placed == index
                hits = int(mask.sum())
                if p == 0.0 or hits == 0:
                    continue
                counts = np.searchsorted(
                    base_cdf(p), rng.random(hits), side="left"
                )
                task_times[mask] = t + counts * demand
            results.append(
                SimulationResult(
                    config=cfg,
                    mode=cls.name,
                    job_times=job_times,
                    task_times=task_times,
                    job_time_interval=batch_means_interval(
                        job_times, cfg.num_batches, cfg.confidence
                    ),
                )
            )
        return results
