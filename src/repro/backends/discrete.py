"""Faithful discrete-time backend: the paper's model, walked unit by unit.

This is the closest analogue of the authors' CSIM validation model and is
used in the tests to cross-check the other back-ends (it is exact but slow).
"""

from __future__ import annotations

import numpy as np

from ..stats import batch_means_interval
from .base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationResult,
    _integral_task_demand,
    _static_scenario,
    register_backend,
)

__all__ = ["simulate_task_discrete", "DiscreteTimeSimulator"]


def simulate_task_discrete(
    task_demand: int,
    owner_demand: float,
    request_probability: float,
    rng: np.random.Generator,
) -> tuple[float, int]:
    """Unit-by-unit discrete-time walk of one task (the paper's model, literally).

    The task performs ``task_demand`` units of work; after each unit the owner
    requests the CPU with probability ``P`` and, if so, runs ``O`` units while
    the task is suspended.  Returns ``(task_time, interruptions)``.
    """
    if int(task_demand) != task_demand or task_demand < 1:
        raise ValueError(f"task_demand must be a positive integer, got {task_demand!r}")
    time = 0.0
    interruptions = 0
    for _ in range(int(task_demand)):
        time += 1.0
        if request_probability > 0.0 and rng.random() < request_probability:
            time += owner_demand
            interruptions += 1
    return time, interruptions


@register_backend
class DiscreteTimeSimulator(SimulationBackend):
    """Faithful (slow) discrete-time simulation of the paper's model."""

    name = "discrete-time"
    capabilities = BackendCapabilities()

    def run(self) -> SimulationResult:
        """Simulate ``num_jobs`` independent jobs and return the estimates."""
        cfg = self.config
        scenario = _static_scenario(cfg, self.name)
        probabilities = [station.request_probability for station in scenario.stations]
        demands = [station.owner.demand for station in scenario.stations]
        rng = self._streams.stream("discrete-time")
        t = _integral_task_demand(cfg.task_demand, self.name)
        job_times = np.empty(cfg.num_jobs, dtype=np.float64)
        task_times = np.empty((cfg.num_jobs, cfg.workstations), dtype=np.float64)
        for j in range(cfg.num_jobs):
            for w in range(cfg.workstations):
                task_time, _ = simulate_task_discrete(
                    t, demands[w], probabilities[w], rng
                )
                task_times[j, w] = task_time
            job_times[j] = task_times[j].max()
        return SimulationResult(
            config=cfg,
            mode=self.name,
            job_times=job_times,
            task_times=task_times.ravel(),
            job_time_interval=batch_means_interval(
                job_times, cfg.num_batches, cfg.confidence
            ),
        )
