"""Backend protocol, registry and the configuration/result data model.

A *simulation backend* is one strategy for estimating the paper's cluster
model: the faithful discrete-time walk, the vectorised Monte-Carlo sampler,
the process-oriented event-driven cluster, or the open-system (job-stream)
variant.  This module defines everything the rest of the engine needs to use
a backend without knowing which one it is:

:class:`SimulationConfig` / :class:`SimulationResult`
    The shared configuration and the closed-system result flavour (the
    open-system flavour lives with its backend in
    :mod:`repro.backends.open_system`).

:class:`SimulationBackend`
    The abstract base every backend subclasses: a registry ``name``, declared
    :class:`BackendCapabilities`, a ``run()`` method, and the NPZ
    serialize/deserialize hooks the result cache calls so each backend owns
    its on-disk layout (no mode special-cases anywhere else).

:func:`register_backend` / :func:`get_backend` / :func:`backend_names`
    The registry replacing the old hardcoded ``_BACKENDS`` dict in
    ``cluster/simulation.py``.  Every layer — :func:`run_simulation`, the
    sweep runner, the result cache, the grid tables, the CLI ``--mode``
    choices — resolves backends through it, so registering a new backend
    makes it available end-to-end.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, Mapping, Sequence

import numpy as np

from ..core.analytical import evaluate_inputs
from ..core.params import (
    STATIC_POLICY,
    ModelInputs,
    OwnerSpec,
    ScenarioSpec,
    request_probability_to_utilization,
)
from ..desim import StreamRegistry
from ..stats import BatchMeansResult, batch_means_interval

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "BackendCapabilities",
    "SimulationBackend",
    "SimulationMode",
    "register_backend",
    "get_backend",
    "backend_names",
    "run_simulation",
    "validate_against_analysis",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration shared by all cluster-simulation back-ends.

    Without a ``scenario``, this is the paper's homogeneous model (every
    workstation shares ``owner``, the static one-task-per-station discipline)
    and the config acts as a thin convenience constructor over
    :class:`~repro.core.params.ScenarioSpec` — :attr:`effective_scenario`
    builds the equivalent ``W``-identical-stations scenario, and the back-ends
    consume only that.  Passing an explicit
    :class:`~repro.core.params.ScenarioSpec` unlocks heterogeneous owners and
    non-static scheduling policies on the same back-ends.

    Attributes
    ----------
    workstations:
        Number of workstations ``W`` (must match the scenario, if given).
    task_demand:
        Per-task demand ``T`` in time units.
    owner:
        Analytical owner spec (demand ``O`` plus utilization / ``P``).  With a
        heterogeneous scenario this is only the representative (first)
        station's owner; reporting uses the scenario's per-station specs.
    num_jobs:
        Number of job completions to sample.  The paper uses
        20 batches x 1000 samples = 20 000.
    num_batches:
        Batches for the batch-means confidence interval (paper: 20).
    confidence:
        Confidence level for the interval (paper: 0.90).
    seed:
        Seed for the reproducible random streams.
    owner_demand_kind:
        Distribution family for the owner demand in the event-driven backend
        ("deterministic", "exponential", "hyperexponential", ...).
    owner_demand_kwargs:
        Extra parameters for the demand distribution (e.g. ``squared_cv``).
    imbalance:
        Relative task-demand imbalance for the event-driven backend
        (0 = perfectly balanced, the paper's assumption).
    scenario:
        Optional generalized scenario (per-station owners, scheduling
        policy).  ``None`` means the homogeneous scenario implied by the
        fields above.
    """

    workstations: int
    task_demand: float
    owner: OwnerSpec
    num_jobs: int = 2000
    num_batches: int = 20
    confidence: float = 0.90
    seed: int = 0
    owner_demand_kind: str = "deterministic"
    owner_demand_kwargs: dict = field(default_factory=dict)
    imbalance: float = 0.0
    scenario: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        if self.workstations < 1:
            raise ValueError(f"workstations must be >= 1, got {self.workstations!r}")
        if self.task_demand <= 0:
            raise ValueError(f"task_demand must be positive, got {self.task_demand!r}")
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs!r}")
        if self.num_batches < 2:
            raise ValueError(f"num_batches must be >= 2, got {self.num_batches!r}")
        if self.num_jobs < self.num_batches and not (
            self.scenario is not None and self.scenario.is_open
        ):
            # Closed back-ends always form a batch-means CI over num_jobs
            # observations; the open-system backend degrades to a point
            # estimate (interval = None) instead, so a short job stream —
            # e.g. the single-arrival reduction scenario — stays expressible.
            raise ValueError(
                f"num_jobs ({self.num_jobs}) must be >= num_batches "
                f"({self.num_batches})"
            )
        if not 0.0 <= self.imbalance < 1.0:
            raise ValueError(f"imbalance must be in [0, 1), got {self.imbalance!r}")
        if self.scenario is not None:
            if self.scenario.workstations != self.workstations:
                raise ValueError(
                    f"scenario has {self.scenario.workstations} stations but "
                    f"workstations={self.workstations}; build the config via "
                    "SimulationConfig.from_scenario to keep them in sync"
                )
            if self.imbalance != self.scenario.imbalance:
                if self.imbalance != 0.0:
                    raise ValueError(
                        f"conflicting imbalance: config says {self.imbalance!r}, "
                        f"scenario says {self.scenario.imbalance!r}"
                    )
                object.__setattr__(self, "imbalance", self.scenario.imbalance)

    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioSpec,
        task_demand: float,
        *,
        num_jobs: int = 2000,
        num_batches: int = 20,
        confidence: float = 0.90,
        seed: int = 0,
    ) -> "SimulationConfig":
        """Build a config around an explicit scenario.

        The legacy homogeneous fields are filled from the scenario's first
        station so rendering helpers keep working; the back-ends read the
        scenario itself.
        """
        first = scenario.stations[0]
        return cls(
            workstations=scenario.workstations,
            task_demand=task_demand,
            owner=first.owner,
            num_jobs=num_jobs,
            num_batches=num_batches,
            confidence=confidence,
            seed=seed,
            owner_demand_kind=first.demand_kind,
            owner_demand_kwargs=dict(first.demand_kwargs),
            imbalance=scenario.imbalance,
            scenario=scenario,
        )

    @property
    def effective_scenario(self) -> ScenarioSpec:
        """The scenario the back-ends execute.

        Either the explicit :attr:`scenario`, or the homogeneous
        ``W``-identical-stations scenario implied by the legacy fields.
        """
        if self.scenario is not None:
            return self.scenario
        return ScenarioSpec.homogeneous(
            self.workstations,
            self.owner,
            demand_kind=self.owner_demand_kind,
            demand_kwargs=self.owner_demand_kwargs,
            policy=STATIC_POLICY,
            imbalance=self.imbalance,
        )

    @property
    def job_demand(self) -> float:
        """Total job demand ``J = T * W``."""
        return self.task_demand * self.workstations

    @property
    def nominal_owner_utilization(self) -> float:
        """Nominal owner utilization ``U`` used for reporting and metrics.

        For a heterogeneous scenario this is the cluster-average utilization
        (the convention of the analytical extension in
        :mod:`repro.core.heterogeneous`); for the homogeneous case it is the
        owner's ``U``, derived via Eq. 8 when the spec was given as a request
        probability so a probability-specified owner is never silently
        treated as ``U = 0``.
        """
        if self.scenario is not None and not self.scenario.is_homogeneous:
            return self.scenario.mean_utilization
        if self.owner.utilization is not None:
            return float(self.owner.utilization)
        assert self.owner.request_probability is not None
        return request_probability_to_utilization(
            self.owner.request_probability, self.owner.demand
        )

    @property
    def model_inputs(self) -> ModelInputs:
        """The analytical-model inputs corresponding to this configuration.

        Only defined for homogeneous scenarios — the paper's closed forms
        take a single ``(O, P)`` pair.  Heterogeneous scenarios are evaluated
        against :mod:`repro.core.heterogeneous` instead.
        """
        if self.scenario is not None and not self.scenario.is_homogeneous:
            raise ValueError(
                "model_inputs is only defined for homogeneous scenarios; use "
                "repro.core.heterogeneous for per-station owner specs"
            )
        assert self.owner.request_probability is not None
        return ModelInputs(
            task_demand=self.task_demand,
            workstations=self.workstations,
            owner_demand=self.owner.demand,
            request_probability=self.owner.request_probability,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Estimates produced by one closed-system simulation run."""

    config: SimulationConfig
    mode: str
    job_times: np.ndarray
    task_times: np.ndarray
    job_time_interval: BatchMeansResult
    measured_owner_utilization: float | None = None

    @property
    def mean_job_time(self) -> float:
        """Point estimate of ``E_j``."""
        return float(np.mean(self.job_times))

    @property
    def mean_task_time(self) -> float:
        """Point estimate of ``E_t``."""
        return float(np.mean(self.task_times))

    @property
    def num_jobs(self) -> int:
        return int(self.job_times.size)

    def speedup(self) -> float:
        """Measured speedup ``J / mean job time``."""
        return self.config.job_demand / self.mean_job_time

    def weighted_efficiency(self) -> float:
        """Measured weighted efficiency.

        Uses the owner utilization the simulation actually experienced: the
        event-driven backend reports a measured value, which is preferred;
        otherwise the nominal ``U`` is derived from the owner spec (via Eq. 8
        when the spec was given as a request probability, so a
        probability-specified owner is never silently treated as ``U = 0``).
        """
        u = (
            self.measured_owner_utilization
            if self.measured_owner_utilization is not None
            else self.config.nominal_owner_utilization
        )
        return self.config.job_demand / (
            (1.0 - u) * self.mean_job_time * self.config.workstations
        )

    def summary(self) -> str:
        ci = self.job_time_interval.interval
        scenario = self.config.effective_scenario
        extras = ""
        if not scenario.is_homogeneous:
            extras += f" U_max={scenario.max_utilization:.3f}"
        if scenario.policy != STATIC_POLICY:
            extras += f" policy={scenario.policy}"
        return (
            f"[{self.mode}] W={self.config.workstations} T={self.config.task_demand} "
            f"U={self.config.nominal_owner_utilization:.3f}{extras}: "
            f"E_t≈{self.mean_task_time:.2f}, E_j≈{self.mean_job_time:.2f} "
            f"± {ci.half_width:.2f} ({ci.confidence:.0%} CI, "
            f"{self.num_jobs} jobs)"
        )


# -- shared backend guards -------------------------------------------------


def _static_scenario(config: SimulationConfig, mode: str) -> ScenarioSpec:
    """Resolve a config's scenario for a model-faithful (discrete) backend.

    The discrete-time walk and the Monte-Carlo sampler implement the paper's
    closed-form model, which has no notion of work redistribution — only the
    static one-task-per-station policy is expressible.  (Per-station *owners*
    are fine: the model's job time is the max of independent, not necessarily
    identically distributed, task times.)  As with the homogeneous config,
    these back-ends use each owner's mean demand; ``demand_kind`` shapes only
    the event-driven backend — except ``"trace"``, which has no analytical
    owner at all and is rejected here.
    """
    scenario = config.effective_scenario
    if scenario.policy != STATIC_POLICY:
        raise ValueError(
            f"the {mode} backend models the paper's static one-task-per-"
            f"station discipline; scheduling policy {scenario.policy!r} "
            "requires the event-driven backend"
        )
    for station in scenario.stations:
        if station.demand_kind == "trace":
            raise ValueError(
                f"the {mode} backend cannot replay recorded owner traces; "
                "trace-driven stations require the event-driven backend"
            )
    _reject_open_scenario(scenario, mode)
    return scenario


def _reject_open_scenario(scenario: ScenarioSpec, mode: str) -> None:
    """Refuse to run an open (job-stream) scenario on a closed backend."""
    if scenario.is_open:
        raise ValueError(
            f"the {mode} backend runs the paper's closed system (one job at a "
            "time); a scenario with a job-arrival process requires the "
            "'open-system' mode"
        )


def _integral_task_demand(task_demand: float, mode: str) -> int:
    """Validate that a discrete backend received an integer task demand.

    The discrete-time walk and the Monte-Carlo sampler treat ``T`` as the
    binomial trial count, so a fractional demand cannot be honoured — and
    silently rounding it (to 0 in the worst case) distorts results without
    warning.  The event-driven backend and the analytical closed forms accept
    fractional ``T``; use those (or :class:`~repro.core.params.TaskRounding`)
    for non-integral demands.
    """
    if float(task_demand) != int(task_demand):
        raise ValueError(
            f"the {mode} backend requires an integral task_demand (it is the "
            f"binomial trial count), got {task_demand!r}; round it explicitly "
            "via TaskRounding or use the event-driven backend"
        )
    return int(task_demand)


# -- backend protocol and registry -----------------------------------------


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can simulate, declared for registry introspection.

    The sweep engine uses these to choose fast paths and fallbacks (e.g. the
    vectorized runner only batches through backends that support it and
    falls back to a capable scalar backend otherwise).

    Attributes
    ----------
    scheduling_policies:
        Supports non-static task-scheduling policies
        (:mod:`repro.cluster.policies`).
    open_system:
        Consumes scenarios with a job-arrival process and returns queueing
        metrics instead of standalone job times.
    fractional_demand:
        Accepts non-integral per-task demands (the discrete backends treat
        ``T`` as a binomial trial count and must reject them).
    trace_owners:
        Can replay recorded :class:`~repro.workload.OwnerActivityTrace`
        owner activity (``StationSpec(demand_kind="trace")``).
    batched:
        Exposes a vectorised multi-config ``run_batch`` fast path.
    """

    scheduling_policies: bool = False
    open_system: bool = False
    fractional_demand: bool = False
    trace_owners: bool = False
    batched: bool = False


class SimulationBackend(abc.ABC):
    """Abstract base of every simulation backend.

    Subclasses set :attr:`name` (the registry key, also exposed as ``mode``
    for backwards compatibility), declare :attr:`capabilities`, implement
    :meth:`run`, and may override the NPZ hooks when their result flavour
    stores different arrays than the closed-system default.
    """

    #: Registry key; ``mode`` is kept as an alias because results and years
    #: of call sites label themselves with ``mode`` strings.
    name: ClassVar[str]
    mode: ClassVar[str]
    capabilities: ClassVar[BackendCapabilities] = BackendCapabilities()

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._streams = StreamRegistry(config.seed)

    @abc.abstractmethod
    def run(self):
        """Execute the simulation and return this backend's result flavour."""

    @classmethod
    def run_batch(
        cls,
        configs: Sequence[SimulationConfig],
        seed: int | None = None,
    ) -> list[SimulationResult]:
        """Vectorised multi-config fast path (``capabilities.batched`` only).

        Backends advertising ``BackendCapabilities(batched=True)`` override
        this with a sampler that evaluates many configs in one pass; the
        sweep engine dispatches to it through the registry
        (``get_backend(mode).run_batch(...)``) so replacement backends are
        honoured.  The default refuses, keeping the capability flag honest.
        """
        raise NotImplementedError(
            f"backend {cls.name!r} does not implement run_batch "
            "(capabilities.batched is False)"
        )

    # -- NPZ cache hooks ---------------------------------------------------
    #
    # Each backend owns its on-disk layout: the result cache stores exactly
    # the mapping returned by serialize_result and rebuilds the result by
    # handing the loaded arrays back to deserialize_result.  The default
    # implementation covers the closed-system SimulationResult; backends
    # with a different result flavour override both hooks.

    @classmethod
    def serialize_result(cls, result: SimulationResult) -> dict[str, np.ndarray]:
        """Flatten a result into the arrays persisted in its NPZ cache entry."""
        measured = (
            np.nan
            if result.measured_owner_utilization is None
            else float(result.measured_owner_utilization)
        )
        return {
            "job_times": np.asarray(result.job_times, dtype=np.float64),
            "task_times": np.asarray(result.task_times, dtype=np.float64),
            "measured_owner_utilization": np.float64(measured),
        }

    @classmethod
    def deserialize_result(
        cls, config: SimulationConfig, arrays: Mapping[str, np.ndarray]
    ) -> SimulationResult:
        """Rebuild a result from its cached arrays.

        Raises ``KeyError``/``ValueError`` on a layout mismatch (a missing
        array, or a sample count that contradicts the config), which the
        cache treats as a miss.  Confidence intervals are recomputed from the
        cached job times, keeping the on-disk format independent of the
        stats layer.
        """
        job_times = np.asarray(arrays["job_times"], dtype=np.float64)
        task_times = np.asarray(arrays["task_times"], dtype=np.float64)
        if job_times.size != config.num_jobs:
            raise ValueError(
                f"cached entry holds {job_times.size} jobs but the config "
                f"expects {config.num_jobs}"
            )
        measured = float(arrays["measured_owner_utilization"])
        return SimulationResult(
            config=config,
            mode=cls.name,
            job_times=job_times,
            task_times=task_times,
            job_time_interval=batch_means_interval(
                job_times, config.num_batches, config.confidence
            ),
            measured_owner_utilization=None if np.isnan(measured) else measured,
        )


#: Alias kept for call sites annotated with the old ``Literal`` type; the
#: registry is open, so any registered backend name is a valid mode.
SimulationMode = str

_REGISTRY: dict[str, type[SimulationBackend]] = {}


def register_backend(
    cls: type[SimulationBackend] | None = None, *, replace: bool = False
):
    """Register a backend class under its :attr:`~SimulationBackend.name`.

    Usable as a plain decorator (``@register_backend``) or with arguments
    (``@register_backend(replace=True)`` to override an existing entry, e.g.
    an instrumented test double).  Returns the class unchanged.
    """

    def _register(backend: type[SimulationBackend]) -> type[SimulationBackend]:
        name = getattr(backend, "name", None)
        if not name or not isinstance(name, str):
            raise ValueError(
                f"backend {backend!r} must define a non-empty string 'name'"
            )
        if not (isinstance(backend, type) and issubclass(backend, SimulationBackend)):
            raise TypeError(
                f"backend {backend!r} must subclass SimulationBackend"
            )
        if not replace and name in _REGISTRY and _REGISTRY[name] is not backend:
            raise ValueError(
                f"a backend named {name!r} is already registered "
                f"({_REGISTRY[name]!r}); pass replace=True to override it"
            )
        backend.mode = name  # keep the alias in sync with the registry key
        _REGISTRY[name] = backend
        return backend

    if cls is None:
        return _register
    return _register(cls)


def get_backend(mode: str) -> type[SimulationBackend]:
    """Resolve a backend class by registry name.

    Raises ``ValueError`` (listing the known names) for an unregistered mode
    — the error every dispatching layer surfaces for a bad ``--mode``.
    """
    try:
        return _REGISTRY[mode]
    except KeyError:
        raise ValueError(
            f"unknown simulation mode {mode!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_REGISTRY)


def run_simulation(config: SimulationConfig, mode: SimulationMode = "monte-carlo"):
    """Run one simulation with the chosen back-end (registry dispatch)."""
    return get_backend(mode)(config).run()


def validate_against_analysis(
    config: SimulationConfig, mode: SimulationMode = "monte-carlo"
) -> dict[str, float]:
    """Compare a simulation run against the analytical model (Section 2.2).

    Returns the analytic and simulated ``E_t`` / ``E_j`` together with the
    relative errors and the CI half-width; the paper reports the two were
    "indistinguishable".
    """
    result = run_simulation(config, mode)
    analytic = evaluate_inputs(config.model_inputs)
    ej_rel_error = (
        result.mean_job_time - analytic.expected_job_time
    ) / analytic.expected_job_time
    et_rel_error = (
        result.mean_task_time - analytic.expected_task_time
    ) / analytic.expected_task_time
    return {
        "analytic_task_time": analytic.expected_task_time,
        "simulated_task_time": result.mean_task_time,
        "task_time_relative_error": et_rel_error,
        "analytic_job_time": analytic.expected_job_time,
        "simulated_job_time": result.mean_job_time,
        "job_time_relative_error": ej_rel_error,
        "job_time_ci_half_width": result.job_time_interval.half_width,
        "job_time_ci_relative_half_width": result.job_time_interval.relative_half_width,
        "num_jobs": float(result.num_jobs),
    }
