"""Pluggable simulation back-ends for the non-dedicated cluster model.

Four back-ends are provided, in increasing order of generality — the faithful
:class:`DiscreteTimeSimulator`, the vectorised :class:`MonteCarloSampler`,
the process-oriented :class:`EventDrivenClusterSimulator` and the job-stream
:class:`OpenSystemSimulator` — each registered under its mode name in the
backend registry defined by :mod:`repro.backends.base`.  Every dispatching
layer (``run_simulation``, the sweep runner, the result cache, the grid
tables, the CLI ``--mode`` choices) resolves back-ends through
:func:`get_backend`, so a new backend registered with
:func:`register_backend` is available end-to-end without touching any of
them.

The modules import in dependency order; importing this package registers all
built-in back-ends.  ``repro.cluster.simulation`` remains as a thin
re-export shim so pre-existing imports keep working unchanged.
"""

from .base import (
    BackendCapabilities,
    SimulationBackend,
    SimulationConfig,
    SimulationMode,
    SimulationResult,
    backend_names,
    get_backend,
    register_backend,
    run_simulation,
    validate_against_analysis,
)
from .discrete import DiscreteTimeSimulator, simulate_task_discrete
from .event_driven import EventDrivenClusterSimulator
from .monte_carlo import MonteCarloSampler
from .open_system import OpenSystemResult, OpenSystemSimulator

# The array-kernel backend lives with its executor in repro.kernel; importing
# the *module* (not a name from it) registers "event-kernel" while staying
# robust to partially initialised modules when repro.kernel is imported first
# (its backend module imports repro.backends.base, closing a cycle that the
# attribute-deferred __getattr__ below keeps harmless).
from ..kernel import backend as _kernel_backend  # noqa: E402  (registration)


def __getattr__(name: str):
    if name == "EventKernelBackend":
        return _kernel_backend.EventKernelBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BackendCapabilities",
    "SimulationBackend",
    "SimulationConfig",
    "SimulationMode",
    "SimulationResult",
    "OpenSystemResult",
    "DiscreteTimeSimulator",
    "EventKernelBackend",
    "MonteCarloSampler",
    "EventDrivenClusterSimulator",
    "OpenSystemSimulator",
    "backend_names",
    "get_backend",
    "register_backend",
    "run_simulation",
    "simulate_task_discrete",
    "validate_against_analysis",
]
