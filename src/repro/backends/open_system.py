"""Open-system backend: the event-driven cluster under a stream of jobs.

Jobs arrive per the scenario's :class:`~repro.core.params.JobArrivalSpec`,
queue for admission and compete for the same non-dedicated stations.  Where
the closed back-ends estimate standalone job time, this one estimates
steady-state queueing metrics — response time, slowdown, throughput,
utilization — with warmup truncation and batch means.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

import numpy as np

from ..cluster.job import OpenJobRecord
from ..cluster.policies import make_policy
from ..core.params import JobArrivalSpec, ScenarioSpec
from ..desim import Environment, Interrupt, Resource, make_variate
from ..stats import (
    BatchMeansResult,
    steady_state_interval,
    warmup_truncate,
)
from .base import (
    BackendCapabilities,
    SimulationConfig,
    register_backend,
)
from .event_driven import EventDrivenClusterSimulator, _split_demands

__all__ = ["OpenSystemResult", "OpenSystemSimulator"]


@dataclass(frozen=True)
class OpenSystemResult:
    """Steady-state queueing estimates of one open-system (job-stream) run.

    The raw per-job records are kept as parallel arrays in *arrival order*
    (so the result round-trips through the NPZ cache); every queueing metric
    is derived, with response times taken in *completion* order and the
    warmup prefix truncated per the arrival spec before steady-state
    statistics are formed.

    Space-shared (job-class) streams additionally carry per-job ``widths``,
    ``class_ids`` and ``restarts`` arrays; classless streams leave them
    ``None``, meaning every job spanned the whole cluster as class 0 with no
    admission preemptions.
    """

    config: SimulationConfig
    mode: str
    arrival_times: np.ndarray
    start_times: np.ndarray
    end_times: np.ndarray
    demands: np.ndarray
    measured_owner_utilization: float | None = None
    widths: np.ndarray | None = None
    class_ids: np.ndarray | None = None
    restarts: np.ndarray | None = None

    @property
    def arrival_spec(self) -> JobArrivalSpec:
        spec = self.config.effective_scenario.arrivals
        assert spec is not None
        return spec

    @property
    def num_jobs(self) -> int:
        return int(self.arrival_times.size)

    @cached_property
    def job_widths(self) -> np.ndarray:
        """Per-job station widths (whole cluster for classless streams)."""
        if self.widths is not None:
            return self.widths
        return np.full(self.num_jobs, float(self.config.workstations))

    @cached_property
    def job_class_ids(self) -> np.ndarray:
        """Per-job class indices (all zero for classless streams)."""
        if self.class_ids is not None:
            return self.class_ids
        return np.zeros(self.num_jobs, dtype=np.float64)

    @cached_property
    def job_restarts(self) -> np.ndarray:
        """Per-job admission-preemption counts (zero for classless streams)."""
        if self.restarts is not None:
            return self.restarts
        return np.zeros(self.num_jobs, dtype=np.float64)

    @cached_property
    def completion_order(self) -> np.ndarray:
        """Indices of the jobs sorted by completion time (stable for ties)."""
        return np.argsort(self.end_times, kind="stable")

    @cached_property
    def response_times(self) -> np.ndarray:
        """Arrival-to-completion times, in completion order."""
        order = self.completion_order
        return (self.end_times - self.arrival_times)[order]

    @cached_property
    def wait_times(self) -> np.ndarray:
        """Admission-queue waiting times, in completion order."""
        order = self.completion_order
        return (self.start_times - self.arrival_times)[order]

    @cached_property
    def service_times(self) -> np.ndarray:
        """On-cluster makespans (the closed-system job times), in completion order."""
        order = self.completion_order
        return (self.end_times - self.start_times)[order]

    @cached_property
    def slowdowns(self) -> np.ndarray:
        """Per-job slowdown: response time over the ideal dedicated makespan.

        The ideal reference is ``demand / width`` — the job's makespan on its
        *own* stations, dedicated and perfectly balanced (``width = W`` for
        classless streams) — so a slowdown of 1 means the job saw neither
        queueing delay nor owner interference.
        """
        order = self.completion_order
        ideal = (self.demands / self.job_widths)[order]
        return (self.end_times - self.arrival_times)[order] / ideal

    @cached_property
    def warmup_jobs(self) -> int:
        """How many earliest-completed jobs the warmup truncation discards."""
        return self.num_jobs - warmup_truncate(
            self.response_times, self.arrival_spec.warmup_fraction
        ).size

    @cached_property
    def steady_response_times(self) -> np.ndarray:
        """Post-warmup response times (the batch-means input)."""
        return warmup_truncate(
            self.response_times, self.arrival_spec.warmup_fraction
        )

    @cached_property
    def response_time_interval(self) -> BatchMeansResult | None:
        """Batch-means CI over the post-warmup response times.

        ``None`` when fewer post-warmup completions than batches exist (e.g.
        the single-arrival reduction scenario).
        """
        return steady_state_interval(
            self.response_times,
            self.arrival_spec.warmup_fraction,
            self.config.num_batches,
            self.config.confidence,
        )

    # -- scalar queueing metrics ------------------------------------------

    @property
    def mean_response_time(self) -> float:
        return float(np.mean(self.steady_response_times))

    @property
    def p95_response_time(self) -> float:
        return float(np.percentile(self.steady_response_times, 95.0))

    @property
    def p99_response_time(self) -> float:
        return float(np.percentile(self.steady_response_times, 99.0))

    @property
    def max_response_time(self) -> float:
        return float(np.max(self.steady_response_times))

    @property
    def total_admission_preemptions(self) -> float:
        """Total kill-and-requeue evictions across the run (0 unless the
        priority admission policy runs preemptively)."""
        return float(np.sum(self.job_restarts))

    @property
    def mean_wait_time(self) -> float:
        return float(
            np.mean(
                warmup_truncate(self.wait_times, self.arrival_spec.warmup_fraction)
            )
        )

    @property
    def mean_slowdown(self) -> float:
        return float(
            np.mean(
                warmup_truncate(self.slowdowns, self.arrival_spec.warmup_fraction)
            )
        )

    @property
    def makespan(self) -> float:
        """Time at which the last job completed."""
        return float(np.max(self.end_times))

    @property
    def throughput(self) -> float:
        """Completed jobs per unit time over the whole run."""
        return self.num_jobs / self.makespan

    @property
    def parallel_utilization(self) -> float:
        """Fraction of total cluster capacity spent on parallel work."""
        return float(np.sum(self.demands)) / (
            self.config.workstations * self.makespan
        )

    def metrics(self) -> dict[str, float]:
        """The steady-state queueing metrics as a flat mapping (for reports)."""
        interval = self.response_time_interval
        return {
            "mean_response_time": self.mean_response_time,
            "p95_response_time": self.p95_response_time,
            "p99_response_time": self.p99_response_time,
            "max_response_time": self.max_response_time,
            "mean_wait_time": self.mean_wait_time,
            "mean_slowdown": self.mean_slowdown,
            "throughput": self.throughput,
            "parallel_utilization": self.parallel_utilization,
            "response_ci_half_width": (
                float("nan") if interval is None else interval.half_width
            ),
            "completed_jobs": float(self.num_jobs),
            "warmup_jobs": float(self.warmup_jobs),
            "admission_preemptions": self.total_admission_preemptions,
        }

    def class_metrics(self) -> dict[str, dict[str, float]]:
        """Steady-state metrics split by job class (space-shared streams only).

        Post-warmup jobs are grouped by the arrival spec's class order; a
        class with no post-warmup completion reports NaN means.  Classless
        streams return an empty mapping.
        """
        spec = self.arrival_spec
        if not spec.job_classes:
            return {}
        order = self.completion_order
        steady = slice(self.warmup_jobs, None)
        ids = self.job_class_ids[order][steady]
        responses = self.response_times[steady]
        waits = self.wait_times[steady]
        slowdowns = self.slowdowns[steady]
        out: dict[str, dict[str, float]] = {}
        for index, job_class in enumerate(spec.job_classes):
            mask = ids == float(index)
            count = int(np.sum(mask))
            if count == 0:
                stats = {
                    "mean_response_time": float("nan"),
                    "p95_response_time": float("nan"),
                    "mean_wait_time": float("nan"),
                    "mean_slowdown": float("nan"),
                }
            else:
                stats = {
                    "mean_response_time": float(np.mean(responses[mask])),
                    "p95_response_time": float(
                        np.percentile(responses[mask], 95.0)
                    ),
                    "mean_wait_time": float(np.mean(waits[mask])),
                    "mean_slowdown": float(np.mean(slowdowns[mask])),
                }
            stats["completed_jobs"] = float(count)
            stats["width"] = float(job_class.width)
            out[job_class.name] = stats
        return out

    def summary(self) -> str:
        cfg = self.config
        spec = self.arrival_spec
        interval = self.response_time_interval
        ci = (
            ""
            if interval is None
            else (
                f" ± {interval.half_width:.2f} "
                f"({interval.interval.confidence:.0%} CI)"
            )
        )
        extras = ""
        if spec.job_classes:
            widths = "/".join(str(c.width) for c in spec.job_classes)
            extras = f" adm={spec.admission_policy} w={widths}"
        return (
            f"[{self.mode}] W={cfg.workstations} T={cfg.task_demand} "
            f"U={cfg.nominal_owner_utilization:.3f} "
            f"{spec.kind}@{spec.mean_rate:.4g}{extras}: "
            f"R≈{self.mean_response_time:.2f}{ci}, "
            f"p95={self.p95_response_time:.2f}, "
            f"p99={self.p99_response_time:.2f}, "
            f"slowdown≈{self.mean_slowdown:.2f}, "
            f"X={self.throughput:.4g}, util={self.parallel_utilization:.3f} "
            f"({self.num_jobs} jobs, {self.warmup_jobs} warmup)"
        )


@register_backend
class OpenSystemSimulator(EventDrivenClusterSimulator):
    """Event-driven cluster fed by a stream of competing parallel jobs.

    Jobs arrive per the scenario's :class:`~repro.core.params.JobArrivalSpec`,
    wait in an admission queue and run under the scenario's scheduling policy
    on the same non-dedicated workstations as the closed-system backend.

    A *classless* spec is the PR-3 stream: FIFO admission of whole-cluster
    jobs, at most ``max_concurrent_jobs`` at once.  A spec with
    :class:`~repro.core.params.JobClassSpec` entries instead routes through
    the admission subsystem (:mod:`repro.cluster.admission`): each job
    requests its class's width, is granted an exclusive station *subset* by
    the configured admission policy (FCFS, EASY backfilling, priority with
    optional preemptive kill-and-requeue), and closed-loop classes are driven
    by think-time sources rather than the interarrival process.

    The owner and placement random streams are created in the exact order of
    the closed backend (and both admission paths share the same dispatch
    mechanics), so a single job arriving at time 0 reproduces the closed
    system's first job bitwise, and a single full-width FCFS class reproduces
    the classless stream bitwise — the reductions the regression tests pin.
    """

    name = "open-system"
    capabilities = BackendCapabilities(
        scheduling_policies=True,
        open_system=True,
        fractional_demand=True,
        trace_owners=True,
    )

    # -- NPZ cache hooks ---------------------------------------------------

    @classmethod
    def serialize_result(cls, result: OpenSystemResult) -> dict[str, np.ndarray]:  # type: ignore[override]
        """Open-system layout: per-job arrival/start/end/demand arrays.

        Width/class/restart arrays are materialized from their classless
        defaults so every entry carries the full layout.
        """
        measured = (
            np.nan
            if result.measured_owner_utilization is None
            else float(result.measured_owner_utilization)
        )
        return {
            "arrival_times": np.asarray(result.arrival_times, dtype=np.float64),
            "start_times": np.asarray(result.start_times, dtype=np.float64),
            "end_times": np.asarray(result.end_times, dtype=np.float64),
            "demands": np.asarray(result.demands, dtype=np.float64),
            "widths": np.asarray(result.job_widths, dtype=np.float64),
            "class_ids": np.asarray(result.job_class_ids, dtype=np.float64),
            "restarts": np.asarray(result.job_restarts, dtype=np.float64),
            "measured_owner_utilization": np.float64(measured),
        }

    @classmethod
    def deserialize_result(
        cls, config: SimulationConfig, arrays: Mapping[str, np.ndarray]
    ) -> OpenSystemResult:  # type: ignore[override]
        """Rebuild an open-system result; queueing metrics re-derive on access."""
        loaded = {
            key: np.asarray(arrays[key], dtype=np.float64)
            for key in (
                "arrival_times",
                "start_times",
                "end_times",
                "demands",
                "widths",
                "class_ids",
                "restarts",
            )
        }
        if loaded["arrival_times"].size != config.num_jobs:
            raise ValueError(
                f"cached entry holds {loaded['arrival_times'].size} jobs but "
                f"the config expects {config.num_jobs}"
            )
        measured = float(arrays["measured_owner_utilization"])
        return OpenSystemResult(
            config=config,
            mode=cls.name,
            measured_owner_utilization=None if np.isnan(measured) else measured,
            **loaded,
        )

    def run(self) -> OpenSystemResult:  # type: ignore[override]
        """Simulate ``num_jobs`` arrivals and return the queueing estimates."""
        cfg = self.config
        scenario = cfg.effective_scenario
        spec = scenario.arrivals
        if spec is None:
            raise ValueError(
                "the open-system backend needs a scenario with a job-arrival "
                "process; set ScenarioSpec.arrivals (e.g. via "
                "JobArrivalSpec.poisson) or use a closed backend"
            )
        if spec.is_space_shared:
            return self._run_space_shared(cfg, scenario, spec)
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        env = Environment()
        # Stream creation order matches the closed event-driven backend
        # (owners, then placement) so the single-arrival reduction is bitwise.
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")
        arrival_rng = self._streams.stream("arrivals")
        demand_rng = self._streams.stream("job-demands")
        demand_variate = make_variate(
            spec.demand_kind, cfg.job_demand, **dict(spec.demand_kwargs)
        )
        admission = Resource(env, capacity=spec.max_concurrent_jobs)

        records: list[OpenJobRecord] = []
        job_procs = []

        def run_one_job(record: OpenJobRecord):
            with admission.request() as req:
                yield req
                record.start_time = env.now
                demands = _split_demands(
                    record.demand, scenario, cfg.workstations, placement_rng
                )
                tasks = yield from policy.run_job(env, stations, demands)
                record.end_time = env.now
                record.tasks = tuple(tasks)

        def source():
            mean_gap = spec.mean_interarrival
            for job_id in range(cfg.num_jobs):
                gap = spec.interarrival(job_id)
                if gap is None:
                    gap = float(arrival_rng.exponential(mean_gap))
                yield env.timeout(gap)
                demand = float(demand_variate.sample(demand_rng))
                while demand <= 0.0:
                    demand = float(demand_variate.sample(demand_rng))
                record = OpenJobRecord(
                    job_id=job_id, arrival_time=env.now, demand=demand
                )
                records.append(record)
                job_procs.append(env.process(run_one_job(record)))

        source_proc = env.process(source())
        # Owners cycle forever: run until all arrivals are in, then drain the
        # in-flight jobs.
        env.run(until=source_proc)
        if job_procs:
            env.run(until=env.all_of(job_procs))

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return OpenSystemResult(
            config=cfg,
            mode=self.name,
            arrival_times=np.array(
                [r.arrival_time for r in records], dtype=np.float64
            ),
            start_times=np.array([r.start_time for r in records], dtype=np.float64),
            end_times=np.array([r.end_time for r in records], dtype=np.float64),
            demands=np.array([r.demand for r in records], dtype=np.float64),
            measured_owner_utilization=measured_util,
        )

    def _run_space_shared(
        self, cfg: SimulationConfig, scenario: ScenarioSpec, spec: JobArrivalSpec
    ) -> OpenSystemResult:
        """Space-shared engine: moldable job classes under an admission policy.

        Structured exactly like the classless path (same stream-creation
        order, same synchronous admission dispatch, same per-job wrapper
        shape) so that a single full-width FCFS class is bitwise-identical to
        the classless stream; the extra streams (class mixing, think times)
        are created *after* the shared ones and a single-class mix draws
        nothing from them.
        """
        from ..cluster.admission import (
            AdmissionController,
            AdmissionPreemption,
            make_admission_policy,
        )

        classes = spec.job_classes
        for job_class in classes:
            if job_class.width > cfg.workstations:
                raise ValueError(
                    f"job class {job_class.name!r} requests width "
                    f"{job_class.width} on a {cfg.workstations}-station cluster"
                )
        policy = make_policy(scenario.policy, **dict(scenario.policy_kwargs))
        admission_policy = make_admission_policy(
            spec.admission_policy, **dict(spec.admission_kwargs)
        )
        env = Environment()
        # Stream creation order matches the classless path (owners, placement,
        # arrivals, job-demands) so the full-width FCFS reduction is bitwise.
        stations = self._build_cluster(env)
        placement_rng = self._streams.stream("placement")
        arrival_rng = self._streams.stream("arrivals")
        demand_rng = self._streams.stream("job-demands")
        class_rng = self._streams.stream("job-classes")
        think_rng = self._streams.stream("think-times")
        demand_variate = make_variate(
            spec.demand_kind, cfg.job_demand, **dict(spec.demand_kwargs)
        )
        mean_util = scenario.mean_utilization
        controller = AdmissionController(
            env,
            stations,
            admission_policy,
            estimate_service=lambda demand, width: demand
            / (width * (1.0 - mean_util)),
        )
        self.last_controller = controller

        records: list[OpenJobRecord] = []
        job_procs = []
        budget = cfg.num_jobs

        def sample_demand() -> float:
            demand = float(demand_variate.sample(demand_rng))
            while demand <= 0.0:
                demand = float(demand_variate.sample(demand_rng))
            return demand

        def submit(class_index: int):
            record = OpenJobRecord(
                job_id=len(records),
                arrival_time=env.now,
                demand=sample_demand(),
                width=classes[class_index].width,
                class_id=class_index,
                priority=classes[class_index].priority,
            )
            records.append(record)
            proc = env.process(run_one_job(record))
            job_procs.append(proc)
            return proc

        def run_one_job(record: OpenJobRecord):
            job_class = classes[record.class_id]
            while True:
                ticket = controller.request(
                    record,
                    width=job_class.width,
                    priority=job_class.priority,
                    class_id=record.class_id,
                )
                # The preemption guard spans the admission wait too: a job can
                # be evicted in the very instant between its admission and its
                # first resume (it is "running" to the controller but still
                # parked at the ticket event).
                try:
                    yield ticket.event
                    subset = [stations[index] for index in ticket.stations]
                    record.start_time = env.now
                    demands = _split_demands(
                        record.demand, scenario, job_class.width, placement_rng
                    )
                    tasks = yield from policy.run_job(env, subset, demands)
                except Interrupt as exc:
                    if isinstance(exc.cause, AdmissionPreemption):
                        # Evicted by a more important arrival: requeue with
                        # the full demand (restart semantics).
                        record.admission_preemptions += 1
                        continue
                    raise
                record.end_time = env.now
                record.tasks = tuple(tasks)
                controller.release(record)
                return

        open_indices = spec.open_class_indices
        open_index_array = np.array(open_indices, dtype=np.int64)
        weights = np.array(
            [classes[index].weight for index in open_indices], dtype=np.float64
        )
        if weights.size:
            weights /= weights.sum()

        def take_budget() -> bool:
            nonlocal budget
            if budget <= 0:
                return False
            budget -= 1
            return True

        def open_source():
            mean_gap = spec.mean_interarrival
            index = 0
            while take_budget():
                gap = spec.interarrival(index)
                if gap is None:
                    gap = float(arrival_rng.exponential(mean_gap))
                index += 1
                yield env.timeout(gap)
                if len(open_indices) == 1:
                    class_index = open_indices[0]
                else:
                    class_index = int(
                        class_rng.choice(open_index_array, p=weights)
                    )
                submit(class_index)

        def closed_source(class_index: int):
            job_class = classes[class_index]
            think_variate = make_variate(
                job_class.think_time_kind,
                job_class.think_time,
                **dict(job_class.think_time_kwargs),
            )
            while True:
                gap = float(think_variate.sample(think_rng))
                yield env.timeout(max(gap, 0.0))
                if not take_budget():
                    return
                yield submit(class_index)

        source_procs = []
        if open_indices:
            source_procs.append(env.process(open_source()))
        for class_index in spec.closed_class_indices:
            for _member in range(classes[class_index].population):
                source_procs.append(env.process(closed_source(class_index)))
        # Owners cycle forever: run until every source is done, then drain the
        # in-flight jobs (closed-loop sources drain their own jobs already).
        if len(source_procs) == 1:
            env.run(until=source_procs[0])
        elif source_procs:
            env.run(until=env.all_of(source_procs))
        if job_procs:
            env.run(until=env.all_of(job_procs))

        measured_util = float(
            np.mean([s.measured_owner_utilization() for s in stations])
        )
        return OpenSystemResult(
            config=cfg,
            mode=self.name,
            arrival_times=np.array(
                [r.arrival_time for r in records], dtype=np.float64
            ),
            start_times=np.array([r.start_time for r in records], dtype=np.float64),
            end_times=np.array([r.end_time for r in records], dtype=np.float64),
            demands=np.array([r.demand for r in records], dtype=np.float64),
            measured_owner_utilization=measured_util,
            widths=np.array([r.width for r in records], dtype=np.float64),
            class_ids=np.array([r.class_id for r in records], dtype=np.float64),
            restarts=np.array(
                [r.admission_preemptions for r in records], dtype=np.float64
            ),
        )
