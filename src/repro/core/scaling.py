"""Scaled-problem (memory-bounded scaleup) analysis — Section 3.2 of the paper.

Fixed-size problems shrink the per-task demand as workstations are added
(``T = J / W``), so the task ratio falls and owner interference bites harder.
Memory-bounded scaleup instead grows the job with the system
(``J = T_0 * W`` for a constant per-node demand ``T_0``), keeping the task
ratio fixed; the paper shows this makes non-dedicated clusters attractive for
scaled problems: at 100 workstations the response time grows only by
14 / 30 / 44 / 71 % for owner utilizations of 1 / 5 / 10 / 20 %.

This module provides:

* :func:`scaled_job_time` / :func:`scaled_sweep` — the Figure-9 curves,
* :func:`response_time_inflation` — the headline percentage increases,
* :func:`scaled_speedup` — the memory-bounded speedup (work completed per unit
  time relative to one loaded workstation),
* :func:`fixed_vs_scaled_comparison` — a side-by-side table of the two scaling
  regimes used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .analytical import ModelEvaluation, evaluate, expected_job_time
from .metrics import compute_metrics
from .params import JobSpec, OwnerSpec, SystemSpec, TaskRounding

__all__ = [
    "scaled_job_time",
    "scaled_sweep",
    "response_time_inflation",
    "scaled_speedup",
    "ScalingPoint",
    "fixed_vs_scaled_comparison",
]


def scaled_job_time(
    per_node_demand: float,
    workstations: int,
    owner: OwnerSpec,
) -> float:
    """Expected job time when the problem scales with the system.

    The job demand is ``per_node_demand * workstations`` so every task has the
    constant demand ``per_node_demand`` regardless of system size (the
    memory-bounded scaleup of Sun & Ni).  With one workstation this reduces to
    the single-task expectation over a loaded node.
    """
    if per_node_demand <= 0:
        raise ValueError(f"per_node_demand must be positive, got {per_node_demand!r}")
    assert owner.request_probability is not None
    return expected_job_time(
        per_node_demand,
        workstations,
        owner.demand,
        owner.request_probability,
    )


def scaled_sweep(
    per_node_demand: float,
    workstation_counts: Sequence[int],
    owner: OwnerSpec,
) -> list[ModelEvaluation]:
    """Figure-9 sweep: evaluate the scaled problem at each system size."""
    results: list[ModelEvaluation] = []
    for w in workstation_counts:
        job = JobSpec(
            total_demand=per_node_demand * int(w), rounding=TaskRounding.INTERPOLATE
        )
        system = SystemSpec(workstations=int(w), owner=owner)
        results.append(evaluate(job, system))
    return results


def response_time_inflation(
    per_node_demand: float,
    workstations: int,
    owner: OwnerSpec,
    *,
    baseline: str = "dedicated",
) -> float:
    """Fractional response-time increase of the scaled problem vs one node.

    Returns e.g. ``0.44`` for a 44 % increase at ``workstations`` nodes.

    Two baselines are supported:

    ``"dedicated"`` (default)
        The interference-free time ``T`` of the per-node problem.  This is the
        baseline that reproduces the paper's quoted 14 / 30 / 44 / 71 %
        increases at 100 workstations for utilizations 1 / 5 / 10 / 20 %
        (the Section 3.2 / Section 5 numbers).
    ``"loaded"``
        The expected time of the per-node problem on a single workstation
        *with the same owner utilization* (the baseline the paper's prose
        describes; the paper's quoted percentages nevertheless correspond to
        the dedicated baseline — see EXPERIMENTS.md).
    """
    if baseline not in {"dedicated", "loaded"}:
        raise ValueError(
            f"baseline must be 'dedicated' or 'loaded', got {baseline!r}"
        )
    many = scaled_job_time(per_node_demand, workstations, owner)
    if baseline == "dedicated":
        return many / per_node_demand - 1.0
    single = scaled_job_time(per_node_demand, 1, owner)
    return many / single - 1.0


def scaled_speedup(
    per_node_demand: float,
    workstations: int,
    owner: OwnerSpec,
) -> float:
    """Memory-bounded (scaled) speedup.

    Work grows by a factor ``W`` while time grows from the single-node time to
    the ``W``-node time; the scaled speedup is therefore
    ``W * time(1) / time(W)``, which equals ``W`` under perfect scaling.
    """
    single = scaled_job_time(per_node_demand, 1, owner)
    many = scaled_job_time(per_node_demand, workstations, owner)
    return workstations * single / many


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a fixed-size vs scaled-problem comparison."""

    workstations: int
    utilization: float
    fixed_job_time: float
    fixed_weighted_efficiency: float
    fixed_task_ratio: float
    scaled_job_time: float
    scaled_inflation: float
    scaled_task_ratio: float

    def as_dict(self) -> dict[str, float]:
        return {
            "workstations": float(self.workstations),
            "utilization": self.utilization,
            "fixed_job_time": self.fixed_job_time,
            "fixed_weighted_efficiency": self.fixed_weighted_efficiency,
            "fixed_task_ratio": self.fixed_task_ratio,
            "scaled_job_time": self.scaled_job_time,
            "scaled_inflation": self.scaled_inflation,
            "scaled_task_ratio": self.scaled_task_ratio,
        }


def fixed_vs_scaled_comparison(
    fixed_job_demand: float,
    per_node_demand: float,
    workstation_counts: Sequence[int],
    owner: OwnerSpec,
) -> list[ScalingPoint]:
    """Side-by-side comparison of the two scaling regimes.

    For every system size, evaluates (a) the fixed-size job of total demand
    ``fixed_job_demand`` (whose task ratio shrinks with ``W``) and (b) the
    scaled job of ``per_node_demand`` per node (whose task ratio is constant).
    Used by the ablation benchmark that illustrates *why* scaled problems
    tolerate owner interference better.
    """
    rows: list[ScalingPoint] = []
    for w in workstation_counts:
        w = int(w)
        fixed_job = JobSpec(
            total_demand=fixed_job_demand, rounding=TaskRounding.INTERPOLATE
        )
        system = SystemSpec(workstations=w, owner=owner)
        fixed_metrics = compute_metrics(evaluate(fixed_job, system))
        rows.append(
            ScalingPoint(
                workstations=w,
                utilization=float(owner.utilization or 0.0),
                fixed_job_time=fixed_metrics.expected_job_time,
                fixed_weighted_efficiency=fixed_metrics.weighted_efficiency,
                fixed_task_ratio=fixed_metrics.task_ratio,
                scaled_job_time=scaled_job_time(per_node_demand, w, owner),
                scaled_inflation=response_time_inflation(per_node_demand, w, owner),
                scaled_task_ratio=per_node_demand / owner.demand,
            )
        )
    return rows
