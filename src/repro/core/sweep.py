"""Parameter-sweep utilities shared by the experiment harness and benchmarks.

The paper's figures are all sweeps over one or two of the four model
parameters (``W``, ``U``, ``O``, ``J``).  This module provides a small tidy
"grid sweep" facility so each figure runner can declare its parameter grid and
receive a flat list of result rows (one per grid point) with every metric
attached, plus helpers to pivot those rows into per-curve series for plotting
or table output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from .analytical import evaluate
from .metrics import MetricSet, compute_metrics
from .params import JobSpec, OwnerSpec, SystemSpec, TaskRounding

__all__ = [
    "SweepGrid",
    "SweepRow",
    "run_sweep",
    "group_rows",
    "pivot_series",
]


@dataclass(frozen=True)
class SweepGrid:
    """Cartesian parameter grid for the analytical model.

    Attributes
    ----------
    job_demands:
        Total job demands ``J`` to evaluate.
    workstation_counts:
        System sizes ``W`` to evaluate.
    utilizations:
        Owner utilizations ``U`` to evaluate.
    owner_demands:
        Owner service demands ``O`` to evaluate.
    rounding:
        Task-demand rounding policy applied to every point.
    """

    job_demands: Sequence[float]
    workstation_counts: Sequence[int]
    utilizations: Sequence[float]
    owner_demands: Sequence[float] = (10.0,)
    rounding: TaskRounding = TaskRounding.INTERPOLATE

    def __post_init__(self) -> None:
        for name in ("job_demands", "workstation_counts", "utilizations", "owner_demands"):
            values = getattr(self, name)
            if len(tuple(values)) == 0:
                raise ValueError(f"{name} must not be empty")

    def points(self) -> Iterable[tuple[float, int, float, float]]:
        """Iterate the cartesian product ``(J, W, U, O)``."""
        return itertools.product(
            self.job_demands,
            self.workstation_counts,
            self.utilizations,
            self.owner_demands,
        )

    def __len__(self) -> int:
        return (
            len(tuple(self.job_demands))
            * len(tuple(self.workstation_counts))
            * len(tuple(self.utilizations))
            * len(tuple(self.owner_demands))
        )


@dataclass(frozen=True)
class SweepRow:
    """One grid point of a sweep with its full metric set."""

    job_demand: float
    workstations: int
    utilization: float
    owner_demand: float
    metrics: MetricSet

    def value(self, metric_name: str) -> float:
        """Look up a metric by name (see :meth:`MetricSet.as_dict`)."""
        return self.metrics.as_dict()[metric_name]


def run_sweep(grid: SweepGrid) -> list[SweepRow]:
    """Evaluate the analytical model at every point of the grid."""
    rows: list[SweepRow] = []
    for job_demand, workstations, utilization, owner_demand in grid.points():
        job = JobSpec(total_demand=float(job_demand), rounding=grid.rounding)
        owner = OwnerSpec(demand=float(owner_demand), utilization=float(utilization))
        system = SystemSpec(workstations=int(workstations), owner=owner)
        metrics = compute_metrics(evaluate(job, system))
        rows.append(
            SweepRow(
                job_demand=float(job_demand),
                workstations=int(workstations),
                utilization=float(utilization),
                owner_demand=float(owner_demand),
                metrics=metrics,
            )
        )
    return rows


def group_rows(
    rows: Sequence[SweepRow], by: str
) -> dict[float, list[SweepRow]]:
    """Group sweep rows by one of the grid dimensions.

    ``by`` is one of ``"job_demand"``, ``"workstations"``, ``"utilization"``,
    ``"owner_demand"``.  Groups preserve the original row order, which matches
    the grid's iteration order.
    """
    valid = {"job_demand", "workstations", "utilization", "owner_demand"}
    if by not in valid:
        raise KeyError(f"cannot group by {by!r}; expected one of {sorted(valid)}")
    grouped: dict[float, list[SweepRow]] = {}
    for row in rows:
        key = float(getattr(row, by))
        grouped.setdefault(key, []).append(row)
    return grouped


def pivot_series(
    rows: Sequence[SweepRow],
    x: str,
    y: str,
    curve: str,
) -> dict[float, tuple[NDArray[np.float64], NDArray[np.float64]]]:
    """Pivot sweep rows into per-curve ``(x, y)`` series.

    This is the shape the figure runners need: e.g. Figure 1 is
    ``pivot_series(rows, x="workstations", y="speedup", curve="utilization")``
    giving one ``(W, speedup)`` series per owner utilization.
    """
    grid_fields = {"job_demand", "workstations", "utilization", "owner_demand"}
    series: dict[float, tuple[NDArray[np.float64], NDArray[np.float64]]] = {}
    for key, group in group_rows(rows, curve).items():
        xs = np.array(
            [
                float(getattr(r, x)) if x in grid_fields else r.value(x)
                for r in group
            ],
            dtype=np.float64,
        )
        ys = np.array(
            [
                float(getattr(r, y)) if y in grid_fields else r.value(y)
                for r in group
            ],
            dtype=np.float64,
        )
        order = np.argsort(xs, kind="stable")
        series[key] = (xs[order], ys[order])
    return series
