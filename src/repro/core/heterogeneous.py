"""Heterogeneously loaded clusters — relaxing the paper's homogeneity assumption.

The paper analyses a *homogeneous* system: every workstation has the same owner
utilization.  Real clusters are rarely that tidy — some owners hammer their
machines, others are away all week.  Because the model's job time is the
maximum of independent (but no longer identically distributed) per-task
completion times, the analysis extends cleanly: the CDF of the maximum is the
*product* of the per-workstation CDFs instead of a power.

This module provides that extension plus the derived quantities the homogeneous
API offers (expected job time, distribution, metrics), and a helper that asks
the question the extension makes answerable: *does concentrating the same total
owner load on a few machines hurt more than spreading it evenly?*  (It does —
the busiest machine dominates the maximum.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from .analytical import expected_task_time
from .distributions import binomial_cdf
from .metrics import weighted_efficiency as _weighted_efficiency
from .params import OwnerSpec, ScenarioSpec

__all__ = [
    "HeterogeneousSystem",
    "heterogeneous_job_time_distribution",
    "expected_job_time_heterogeneous",
    "HeterogeneousEvaluation",
    "evaluate_heterogeneous",
    "concentrated_utilizations",
    "concentration_comparison",
]


@dataclass(frozen=True)
class HeterogeneousSystem:
    """A cluster whose workstations may have different owner behaviours.

    ``owners[i]`` describes the owner of workstation ``i``; the system size is
    ``len(owners)``.  The paper's homogeneous system is the special case of
    ``owners`` being ``W`` copies of one :class:`OwnerSpec`.
    """

    owners: tuple[OwnerSpec, ...]

    def __post_init__(self) -> None:
        if not self.owners:
            raise ValueError("a heterogeneous system needs at least one workstation")
        object.__setattr__(self, "owners", tuple(self.owners))

    @classmethod
    def homogeneous(cls, workstations: int, owner: OwnerSpec) -> "HeterogeneousSystem":
        """The paper's homogeneous cluster expressed in this representation."""
        if workstations < 1:
            raise ValueError(f"workstations must be >= 1, got {workstations!r}")
        return cls(owners=tuple([owner] * workstations))

    @classmethod
    def from_utilizations(
        cls, utilizations: Sequence[float], owner_demand: float = 10.0
    ) -> "HeterogeneousSystem":
        """Build a system from a per-workstation utilization vector."""
        return cls(
            owners=tuple(
                OwnerSpec(demand=owner_demand, utilization=float(u)) for u in utilizations
            )
        )

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec) -> "HeterogeneousSystem":
        """The analytical view of a simulation :class:`ScenarioSpec`."""
        return cls(owners=scenario.owners)

    @property
    def workstations(self) -> int:
        return len(self.owners)

    @property
    def mean_utilization(self) -> float:
        """Average owner utilization across the cluster."""
        return float(np.mean([o.utilization for o in self.owners]))

    @property
    def max_utilization(self) -> float:
        return float(np.max([o.utilization for o in self.owners]))

    @property
    def utilization_spread(self) -> float:
        """Population standard deviation of the per-workstation utilizations."""
        return float(np.std([o.utilization for o in self.owners]))


def heterogeneous_job_time_distribution(
    task_demand: int,
    system: HeterogeneousSystem,
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Job completion-time distribution on a heterogeneously loaded cluster.

    All tasks have the same demand ``T`` (the job is still split evenly — the
    heterogeneity is in the *owners*, not the application).  Each workstation's
    interruption count is ``Binomial(T, P_i)``; the job waits for the maximum,
    whose CDF is the product of the per-workstation CDFs.  The support is
    expressed in interruption counts ``n = 0..T`` mapped to times
    ``T + n * O_max`` only when all owner demands are equal; for mixed demands
    the time conversion is ambiguous, so this function requires a common owner
    demand and raises otherwise (mixed demands are handled by the Monte-Carlo
    path in :mod:`repro.cluster`).
    """
    if int(task_demand) != task_demand or task_demand < 1:
        raise ValueError(f"task_demand must be a positive integer, got {task_demand!r}")
    demands = {o.demand for o in system.owners}
    if len(demands) != 1:
        raise ValueError(
            "the closed-form heterogeneous distribution requires a common owner "
            f"demand; got demands {sorted(demands)} (use the cluster simulator "
            "for mixed owner demands)"
        )
    owner_demand = demands.pop()
    trials = int(task_demand)
    product_cdf = np.ones(trials + 1, dtype=np.float64)
    for owner in system.owners:
        assert owner.request_probability is not None
        product_cdf *= binomial_cdf(trials, owner.request_probability)
    pmf = np.clip(np.diff(product_cdf, prepend=0.0), 0.0, 1.0)
    support = trials + np.arange(trials + 1, dtype=np.float64) * owner_demand
    return support, pmf


def expected_job_time_heterogeneous(
    task_demand: int | float,
    system: HeterogeneousSystem,
) -> float:
    """Expected job time on a heterogeneously loaded cluster.

    Fractional task demands are handled by linear interpolation between the
    two adjacent integer evaluations, mirroring the homogeneous API.
    """
    import math

    if task_demand <= 0:
        raise ValueError(f"task_demand must be positive, got {task_demand!r}")
    lower = max(1, math.floor(task_demand))
    upper = math.ceil(task_demand)

    def evaluate_at(trials: int) -> float:
        support, pmf = heterogeneous_job_time_distribution(trials, system)
        return float(np.dot(support, pmf))

    if lower == upper or task_demand == lower:
        return evaluate_at(int(task_demand))
    frac = task_demand - math.floor(task_demand)
    return (1.0 - frac) * evaluate_at(lower) + frac * evaluate_at(upper)


@dataclass(frozen=True)
class HeterogeneousEvaluation:
    """Evaluation of a job on a heterogeneously loaded cluster."""

    job_demand: float
    task_demand: float
    workstations: int
    mean_utilization: float
    max_utilization: float
    utilization_spread: float
    expected_job_time: float
    expected_task_times: tuple[float, ...]
    weighted_efficiency: float

    @property
    def bottleneck_workstation(self) -> int:
        """Index of the workstation with the largest expected task time."""
        return int(np.argmax(self.expected_task_times))


def evaluate_heterogeneous(
    job_demand: float,
    system: HeterogeneousSystem,
) -> HeterogeneousEvaluation:
    """Evaluate a perfectly parallel job of demand ``J`` on a mixed-load cluster.

    The weighted efficiency discounts the cluster's *average* idle share
    ``1 - mean(U_i)``, the natural generalisation of the paper's metric.
    """
    if job_demand <= 0:
        raise ValueError(f"job_demand must be positive, got {job_demand!r}")
    workstations = system.workstations
    task_demand = job_demand / workstations
    ej = expected_job_time_heterogeneous(task_demand, system)
    per_task = tuple(
        expected_task_time(task_demand, owner.demand, owner.request_probability or 0.0)
        for owner in system.owners
    )
    weighted_eff = _weighted_efficiency(
        job_demand, ej, workstations, system.mean_utilization
    )
    return HeterogeneousEvaluation(
        job_demand=float(job_demand),
        task_demand=task_demand,
        workstations=workstations,
        mean_utilization=system.mean_utilization,
        max_utilization=system.max_utilization,
        utilization_spread=system.utilization_spread,
        expected_job_time=ej,
        expected_task_times=per_task,
        weighted_efficiency=weighted_eff,
    )


def concentrated_utilizations(
    workstations: int,
    mean_utilization: float,
    level: float,
) -> list[float]:
    """Per-workstation utilizations concentrating a fixed average load.

    At ``level`` 0 every workstation carries ``mean_utilization``; at 1 half
    the workstations carry double the average and the rest make up the
    difference (idle when ``W`` is even).  Intermediate levels interpolate.
    The cluster-wide average is the same for every level.
    """
    if workstations < 2:
        raise ValueError("load concentration needs at least two workstations")
    if not 0.0 <= mean_utilization < 0.5:
        raise ValueError(
            "mean_utilization must be in [0, 0.5) so the busy half stays below "
            f"100% utilization; got {mean_utilization!r}"
        )
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"concentration level must be in [0, 1], got {level!r}")
    if level == 0.0:
        # Exactly homogeneous — skip the rebalancing arithmetic so no float
        # round-off sneaks into the "no skew" reference point.
        return [mean_utilization] * workstations
    half = workstations // 2
    high = mean_utilization * (1.0 + level)
    low_count = workstations - half
    # Keep the cluster-wide average utilization fixed.
    low = (mean_utilization * workstations - high * half) / low_count
    return [high] * half + [low] * low_count


def concentration_comparison(
    job_demand: float,
    workstations: int,
    mean_utilization: float,
    concentration_levels: Sequence[float] = (0.0, 0.5, 1.0),
    owner_demand: float = 10.0,
) -> dict[float, HeterogeneousEvaluation]:
    """Same average owner load, increasingly concentrated on half the machines.

    At concentration 0 every workstation has ``mean_utilization``; at
    concentration 1 half the workstations are completely idle and the other
    half carry ``2 * mean_utilization``.  Intermediate values interpolate.
    Returns one evaluation per concentration level, showing how load skew
    degrades the job time even though the average idle capacity is unchanged.
    """
    results: dict[float, HeterogeneousEvaluation] = {}
    for level in concentration_levels:
        utilizations = concentrated_utilizations(workstations, mean_utilization, level)
        system = HeterogeneousSystem.from_utilizations(utilizations, owner_demand)
        results[float(level)] = evaluate_heterogeneous(job_demand, system)
    return results
