"""Feasibility analysis: when is non-dedicated distributed computing worthwhile?

Section 5 of the paper distils the fixed-size results into task-ratio
thresholds: *"the task ratio should be at least 8 for a parallel job to
achieve 80 percent of the possible speedup ... for a system in which each
homogeneous workstation has a utilization of 5 percent.  At a utilization of
10 percent the task ratio must be 13 or higher, and at a utilization of 20
percent the task ratio must be 20 or greater."*  ("Possible speedup" is the
weighted notion — speedup adjusted for the cycles the owners consume.)

This module turns that analysis into a reusable API:

* :func:`minimum_task_ratio` — the smallest integer task ratio achieving a
  target weighted efficiency for a given system size / owner load,
* :func:`feasibility_frontier` — the threshold as a function of utilization,
* :func:`is_feasible` / :class:`FeasibilityReport` — a yes/no decision with
  the supporting numbers for a concrete job and system,
* :func:`required_job_demand` — the smallest total job demand ``J`` that makes
  a given cluster worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .analytical import evaluate
from .metrics import compute_metrics
from .params import JobSpec, OwnerSpec, SystemSpec, TaskRounding

__all__ = [
    "weighted_efficiency_at_task_ratio",
    "minimum_task_ratio",
    "feasibility_frontier",
    "required_job_demand",
    "FeasibilityReport",
    "assess_feasibility",
]

#: Default efficiency target used by the paper's Section 5 discussion.
DEFAULT_TARGET_WEIGHTED_EFFICIENCY = 0.80

#: Upper bound on the task-ratio search.  A ratio of a few thousand is far
#: beyond anything of practical interest; hitting this bound signals an
#: infeasible configuration rather than a numerical issue.
MAX_TASK_RATIO_SEARCHED = 100_000


def weighted_efficiency_at_task_ratio(
    ratio: float,
    workstations: int,
    owner: OwnerSpec,
) -> float:
    """Weighted efficiency attained at a given task ratio ``T / O``.

    The task demand is ``ratio * O`` on every one of the ``workstations``
    nodes (i.e. the job demand is ``ratio * O * W``); this is exactly the
    quantity plotted on the y-axis of Figures 7 and 8.
    """
    if ratio <= 0:
        raise ValueError(f"task ratio must be positive, got {ratio!r}")
    task_demand = ratio * owner.demand
    job = JobSpec(
        total_demand=task_demand * workstations, rounding=TaskRounding.INTERPOLATE
    )
    system = SystemSpec(workstations=workstations, owner=owner)
    return compute_metrics(evaluate(job, system)).weighted_efficiency


def minimum_task_ratio(
    workstations: int,
    owner: OwnerSpec,
    target_weighted_efficiency: float = DEFAULT_TARGET_WEIGHTED_EFFICIENCY,
    *,
    integer: bool = True,
) -> float:
    """Smallest task ratio achieving the target weighted efficiency.

    Weighted efficiency is monotonically non-decreasing in the task ratio
    (larger tasks amortise each owner interruption over more useful work), so
    a binary search over the ratio is exact.

    Parameters
    ----------
    workstations:
        System size ``W``.
    owner:
        Owner behaviour (demand ``O`` and utilization / request probability).
    target_weighted_efficiency:
        Target in ``(0, 1)``; the paper uses 0.80.
    integer:
        If true (default) the answer is rounded up to the next integer ratio,
        matching how the paper states its thresholds; otherwise the fractional
        crossing point is refined to three decimal places.

    Raises
    ------
    ValueError
        If the target cannot be reached even at an extremely large task ratio
        (e.g. utilization so high the system is never 80% weighted-efficient).
    """
    if not 0.0 < target_weighted_efficiency < 1.0:
        raise ValueError(
            "target_weighted_efficiency must be in (0, 1), "
            f"got {target_weighted_efficiency!r}"
        )
    if owner.utilization == 0.0:
        return 1.0 if integer else 0.0 + 1e-9

    def achieves(ratio: float) -> bool:
        return (
            weighted_efficiency_at_task_ratio(ratio, workstations, owner)
            >= target_weighted_efficiency
        )

    # Exponential search for an upper bracket.
    lo, hi = 1.0, 1.0
    if achieves(1.0):
        return 1.0
    while not achieves(hi):
        lo = hi
        hi *= 2.0
        if hi > MAX_TASK_RATIO_SEARCHED:
            raise ValueError(
                "target weighted efficiency "
                f"{target_weighted_efficiency} unreachable for W={workstations}, "
                f"U={owner.utilization}, O={owner.demand} "
                f"(searched task ratios up to {MAX_TASK_RATIO_SEARCHED})"
            )
    # Binary search down to unit (or fine) resolution.
    resolution = 1.0 if integer else 1e-3
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if achieves(mid):
            hi = mid
        else:
            lo = mid
    if integer:
        import math

        candidate = math.ceil(hi - 1e-9)
        # The bracket guarantees `hi` achieves the target; make sure the
        # integer we report does too (rounding could land on `lo`'s side).
        while not achieves(float(candidate)):
            candidate += 1
        return float(candidate)
    return hi


def feasibility_frontier(
    utilizations: Sequence[float],
    workstations: int = 60,
    owner_demand: float = 10.0,
    target_weighted_efficiency: float = DEFAULT_TARGET_WEIGHTED_EFFICIENCY,
) -> dict[float, float]:
    """Minimum task ratio as a function of owner utilization.

    Reproduces the Section-5 threshold table (the paper's quoted 8 / 13 / 20
    values correspond to utilizations 0.05 / 0.10 / 0.20 at ``W = 60``).
    """
    frontier: dict[float, float] = {}
    for u in utilizations:
        owner = OwnerSpec(demand=owner_demand, utilization=float(u))
        frontier[float(u)] = minimum_task_ratio(
            workstations, owner, target_weighted_efficiency
        )
    return frontier


def required_job_demand(
    workstations: int,
    owner: OwnerSpec,
    target_weighted_efficiency: float = DEFAULT_TARGET_WEIGHTED_EFFICIENCY,
) -> float:
    """Smallest total job demand ``J`` that achieves the target efficiency.

    Since ``J = T * W = ratio * O * W``, this is the feasibility threshold
    expressed in the units users actually control (how much work the parallel
    job must contain before farming it out to the cluster pays off).
    """
    ratio = minimum_task_ratio(
        workstations, owner, target_weighted_efficiency, integer=False
    )
    return ratio * owner.demand * workstations


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility assessment for a concrete job and system."""

    feasible: bool
    workstations: int
    utilization: float
    owner_demand: float
    task_demand: float
    task_ratio: float
    required_task_ratio: float
    weighted_efficiency: float
    target_weighted_efficiency: float
    expected_job_time: float
    dedicated_job_time: float

    @property
    def headroom(self) -> float:
        """How far the achieved task ratio exceeds (or falls short of) the requirement."""
        return self.task_ratio - self.required_task_ratio

    def summary(self) -> str:
        """One-paragraph human-readable summary of the assessment."""
        verdict = "FEASIBLE" if self.feasible else "NOT FEASIBLE"
        return (
            f"{verdict}: task ratio {self.task_ratio:.1f} vs required "
            f"{self.required_task_ratio:.1f} for {self.target_weighted_efficiency:.0%} "
            f"weighted efficiency on {self.workstations} workstations at "
            f"{self.utilization:.0%} owner utilization "
            f"(achieved weighted efficiency {self.weighted_efficiency:.1%}; "
            f"expected job time {self.expected_job_time:.1f} vs {self.dedicated_job_time:.1f} "
            "on a dedicated system)."
        )


def assess_feasibility(
    job: JobSpec,
    system: SystemSpec,
    target_weighted_efficiency: float = DEFAULT_TARGET_WEIGHTED_EFFICIENCY,
) -> FeasibilityReport:
    """Assess whether running ``job`` on ``system`` meets the efficiency target.

    This is the user-facing answer to the paper's title question: given my
    parallel job and my cluster's owner load, is cycle-stealing worthwhile?
    """
    evaluation = evaluate(job, system)
    metrics = compute_metrics(evaluation)
    required = minimum_task_ratio(
        system.workstations, system.owner, target_weighted_efficiency, integer=False
    )
    return FeasibilityReport(
        feasible=metrics.weighted_efficiency >= target_weighted_efficiency,
        workstations=system.workstations,
        utilization=evaluation.utilization,
        owner_demand=system.owner.demand,
        task_demand=evaluation.task_demand,
        task_ratio=metrics.task_ratio,
        required_task_ratio=required,
        weighted_efficiency=metrics.weighted_efficiency,
        target_weighted_efficiency=target_weighted_efficiency,
        expected_job_time=evaluation.expected_job_time,
        dedicated_job_time=evaluation.task_demand,
    )
