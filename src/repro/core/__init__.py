"""Core analytical model, metrics and feasibility analysis.

This package implements the paper's primary contribution: the discrete-time
analytical model of a perfectly parallel job on non-dedicated workstations
(Section 2), the non-dedicated performance metrics including the *task ratio*
(Section 3.1), the scaled-problem analysis (Section 3.2) and the feasibility
thresholds of Section 5.
"""

from .analytical import (
    ModelEvaluation,
    evaluate,
    evaluate_inputs,
    expected_job_time,
    expected_task_time,
    job_time_distribution,
    job_time_quantile,
    job_time_survival,
    job_time_variance,
    sweep_utilizations,
    sweep_workstations,
    task_time_distribution,
    worst_case_task_time,
)
from .heterogeneous import (
    HeterogeneousEvaluation,
    HeterogeneousSystem,
    concentrated_utilizations,
    concentration_comparison,
    evaluate_heterogeneous,
    expected_job_time_heterogeneous,
    heterogeneous_job_time_distribution,
)
from .distributions import (
    Binomial,
    Deterministic,
    Geometric,
    binomial_cdf,
    binomial_mean,
    binomial_pmf,
    binomial_variance,
    max_of_iid_cdf,
    max_of_iid_mean,
    max_of_iid_pmf,
)
from .feasibility import (
    FeasibilityReport,
    assess_feasibility,
    feasibility_frontier,
    minimum_task_ratio,
    required_job_demand,
    weighted_efficiency_at_task_ratio,
)
from .metrics import (
    MetricSet,
    compute_metrics,
    efficiency,
    metrics_table,
    speedup,
    task_ratio,
    weighted_efficiency,
    weighted_speedup,
)
from .params import (
    STATIC_POLICY,
    FCFS_ADMISSION,
    JobArrivalSpec,
    JobClassSpec,
    JobSpec,
    ModelInputs,
    OwnerSpec,
    ScenarioSpec,
    StationSpec,
    SystemSpec,
    TaskRounding,
    request_probability_to_utilization,
    split_job_demand,
    utilization_to_request_probability,
)
from .scaling import (
    ScalingPoint,
    fixed_vs_scaled_comparison,
    response_time_inflation,
    scaled_job_time,
    scaled_speedup,
    scaled_sweep,
)
from .sweep import SweepGrid, SweepRow, group_rows, pivot_series, run_sweep

__all__ = [
    # params
    "JobSpec",
    "FCFS_ADMISSION",
    "JobArrivalSpec",
    "JobClassSpec",
    "OwnerSpec",
    "StationSpec",
    "ScenarioSpec",
    "STATIC_POLICY",
    "SystemSpec",
    "ModelInputs",
    "TaskRounding",
    "utilization_to_request_probability",
    "request_probability_to_utilization",
    "split_job_demand",
    # distributions
    "Binomial",
    "Geometric",
    "Deterministic",
    "binomial_pmf",
    "binomial_cdf",
    "binomial_mean",
    "binomial_variance",
    "max_of_iid_cdf",
    "max_of_iid_pmf",
    "max_of_iid_mean",
    # analytical
    "ModelEvaluation",
    "evaluate",
    "evaluate_inputs",
    "expected_task_time",
    "expected_job_time",
    "task_time_distribution",
    "job_time_distribution",
    "job_time_quantile",
    "job_time_variance",
    "job_time_survival",
    "worst_case_task_time",
    # heterogeneous extension
    "HeterogeneousSystem",
    "HeterogeneousEvaluation",
    "heterogeneous_job_time_distribution",
    "expected_job_time_heterogeneous",
    "evaluate_heterogeneous",
    "concentrated_utilizations",
    "concentration_comparison",
    "sweep_workstations",
    "sweep_utilizations",
    # metrics
    "MetricSet",
    "compute_metrics",
    "metrics_table",
    "speedup",
    "weighted_speedup",
    "efficiency",
    "weighted_efficiency",
    "task_ratio",
    # feasibility
    "FeasibilityReport",
    "assess_feasibility",
    "minimum_task_ratio",
    "feasibility_frontier",
    "required_job_demand",
    "weighted_efficiency_at_task_ratio",
    # scaling
    "ScalingPoint",
    "scaled_job_time",
    "scaled_sweep",
    "scaled_speedup",
    "response_time_inflation",
    "fixed_vs_scaled_comparison",
    # sweep
    "SweepGrid",
    "SweepRow",
    "run_sweep",
    "group_rows",
    "pivot_series",
]
