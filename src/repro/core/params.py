"""Model parameters and notation for the non-dedicated distributed-computing model.

This module encodes Table 1 of Leutenegger & Sun (1993) as typed, validated
dataclasses.  The notation used throughout the library mirrors the paper:

=========  =====================================================================
Symbol     Meaning
=========  =====================================================================
``J``      Total demand (computing time units) of the parallel job.
``W``      Number of workstations in the system (one parallel task per node).
``T``      Demand of one parallel task, ``T = J / W``.
``O``      Demand of one workstation-owner process (units of time).
``U``      Utilization of a workstation by its owner.
``P``      Probability that the owner requests the processor after any given
           unit of parallel work (geometric think time with mean ``1/P``).
``E_t``    Mean expected task completion time.
``E_j``    Mean expected job completion time.
=========  =====================================================================

The owner utilization and request probability are linked by Eq. (8) of the
paper::

    U = O / (O + 1/P)        <=>        P = U / (O * (1 - U))

Users normally specify the owner load by utilization (as the paper's figures
do) and let the library derive ``P``; both directions are supported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workload uses core)
    from ..workload import OwnerActivityTrace

__all__ = [
    "TaskRounding",
    "OwnerSpec",
    "StationSpec",
    "JobClassSpec",
    "JobArrivalSpec",
    "ScenarioSpec",
    "STATIC_POLICY",
    "FCFS_ADMISSION",
    "JobSpec",
    "SystemSpec",
    "ModelInputs",
    "utilization_to_request_probability",
    "request_probability_to_utilization",
    "split_job_demand",
]

#: Name of the paper's task-scheduling discipline (one statically assigned
#: task per workstation).  The canonical policy names live in
#: :mod:`repro.cluster.policies`; this one is needed by the core layer because
#: the model-faithful (discrete) simulation back-ends support only it.
STATIC_POLICY = "static"


class TaskRounding(str, Enum):
    """Policy for mapping a possibly fractional per-task demand onto the
    integer-valued discrete-time model.

    The analytical model of the paper is a discrete-time model: the owner may
    request the processor after every *unit* of parallel work, so the task
    demand ``T`` enters the binomial distribution as an integer trial count.
    When ``J`` is not divisible by ``W`` the per-task demand ``J / W`` is
    fractional and a policy is needed:

    ``ROUND``
        Round to the nearest integer (minimum 1).  This is the default and
        matches how the paper's figures are generated for ``J = 1000`` with
        arbitrary ``W``.
    ``FLOOR`` / ``CEIL``
        Round down / up (minimum 1).
    ``INTERPOLATE``
        Evaluate the model at ``floor(T)`` and ``ceil(T)`` and linearly blend
        the two results by the fractional part.  This produces smooth curves
        for dense sweeps of ``W``.
    """

    ROUND = "round"
    FLOOR = "floor"
    CEIL = "ceil"
    INTERPOLATE = "interpolate"


def utilization_to_request_probability(utilization: float, owner_demand: float) -> float:
    """Convert owner utilization ``U`` into the per-unit request probability ``P``.

    Inverts Eq. (8) of the paper, ``U = O / (O + 1/P)``:

    >>> round(utilization_to_request_probability(0.01, 10.0), 6)
    0.00101

    Parameters
    ----------
    utilization:
        Owner utilization ``U`` in ``[0, 1)``.
    owner_demand:
        Owner process demand ``O`` (> 0).

    Returns
    -------
    float
        Request probability ``P`` in ``[0, 1]``.  ``U = 0`` maps to ``P = 0``.
    """
    if not 0.0 <= utilization < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {utilization!r}")
    if owner_demand <= 0.0:
        raise ValueError(f"owner_demand must be positive, got {owner_demand!r}")
    if utilization == 0.0:
        return 0.0
    p = utilization / (owner_demand * (1.0 - utilization))
    return min(p, 1.0)


def request_probability_to_utilization(request_probability: float, owner_demand: float) -> float:
    """Convert the per-unit request probability ``P`` into owner utilization ``U``.

    Implements Eq. (8) of the paper, ``U = O / (O + 1/P)``.

    >>> round(request_probability_to_utilization(0.00101010101, 10.0), 4)
    0.01
    """
    if not 0.0 <= request_probability <= 1.0:
        raise ValueError(
            f"request_probability must be in [0, 1], got {request_probability!r}"
        )
    if owner_demand <= 0.0:
        raise ValueError(f"owner_demand must be positive, got {owner_demand!r}")
    if request_probability == 0.0:
        return 0.0
    return owner_demand / (owner_demand + 1.0 / request_probability)


def split_job_demand(
    job_demand: float,
    workstations: int,
    rounding: TaskRounding | str = TaskRounding.ROUND,
) -> float:
    """Return the per-task demand ``T = J / W`` under the given rounding policy.

    For :attr:`TaskRounding.INTERPOLATE` the *fractional* value is returned
    unchanged — the analytical routines interpolate internally.
    """
    if workstations < 1:
        raise ValueError(f"workstations must be >= 1, got {workstations!r}")
    if job_demand <= 0:
        raise ValueError(f"job_demand must be positive, got {job_demand!r}")
    rounding = TaskRounding(rounding)
    raw = job_demand / workstations
    if rounding is TaskRounding.INTERPOLATE:
        return raw
    if rounding is TaskRounding.FLOOR:
        value = math.floor(raw)
    elif rounding is TaskRounding.CEIL:
        value = math.ceil(raw)
    else:
        value = round(raw)
    return float(max(1, value))


@dataclass(frozen=True)
class OwnerSpec:
    """Workstation-owner behaviour.

    The owner alternates between *thinking* (idle, geometrically distributed
    with mean ``1/P`` time units) and *using* the workstation for ``demand``
    units.  Owner processes have preemptive priority over parallel tasks.

    Exactly one of ``utilization`` or ``request_probability`` must be given;
    the other is derived via Eq. (8).

    Attributes
    ----------
    demand:
        Owner-process service demand ``O`` in time units (default 10, the
        value used throughout the paper's analysis section).
    utilization:
        Long-run fraction of time the owner keeps the workstation busy.
    request_probability:
        Probability ``P`` that the owner requests the CPU after a unit of
        parallel work.
    """

    demand: float = 10.0
    utilization: float | None = None
    request_probability: float | None = None

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"owner demand must be positive, got {self.demand!r}")
        if (self.utilization is None) == (self.request_probability is None):
            raise ValueError(
                "exactly one of utilization / request_probability must be provided"
            )
        if self.utilization is not None:
            p = utilization_to_request_probability(self.utilization, self.demand)
            object.__setattr__(self, "request_probability", p)
        else:
            assert self.request_probability is not None
            u = request_probability_to_utilization(self.request_probability, self.demand)
            object.__setattr__(self, "utilization", u)

    @classmethod
    def from_utilization(cls, utilization: float, demand: float = 10.0) -> "OwnerSpec":
        """Build an owner spec from a target utilization (paper's usual input)."""
        return cls(demand=demand, utilization=utilization)

    @classmethod
    def from_request_probability(cls, p: float, demand: float = 10.0) -> "OwnerSpec":
        """Build an owner spec from the raw request probability ``P``."""
        return cls(demand=demand, request_probability=p)

    @classmethod
    def idle(cls, demand: float = 10.0) -> "OwnerSpec":
        """An owner that never touches the workstation (dedicated node)."""
        return cls(demand=demand, utilization=0.0)

    @property
    def mean_think_time(self) -> float:
        """Mean owner think time ``1/P`` (``inf`` for an idle owner)."""
        assert self.request_probability is not None
        if self.request_probability == 0.0:
            return math.inf
        return 1.0 / self.request_probability

    def with_utilization(self, utilization: float) -> "OwnerSpec":
        """Return a copy with a different utilization (same demand)."""
        return OwnerSpec(demand=self.demand, utilization=utilization)


def _freeze_kwargs(
    kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None,
) -> tuple[tuple[str, float], ...]:
    """Canonicalise keyword parameters into a hashable, order-stable form.

    Accepts a mapping or an iterable of pairs and returns sorted
    ``(name, value)`` tuples so two specs built from differently ordered
    dictionaries compare (and fingerprint) equal.
    """
    if kwargs is None:
        return ()
    items = kwargs.items() if isinstance(kwargs, Mapping) else kwargs
    return tuple(sorted((str(k), float(v)) for k, v in items))


@dataclass(frozen=True)
class StationSpec:
    """One workstation of a (possibly heterogeneous) scenario.

    Attributes
    ----------
    owner:
        The analytical owner spec of this workstation (demand ``O_i`` plus
        utilization / request probability ``P_i``).
    demand_kind:
        Distribution family of the owner demand in the event-driven backend
        ("deterministic", "exponential", "hyperexponential", ...).  The
        model-faithful discrete back-ends always use the mean demand, exactly
        as they did for the homogeneous ``SimulationConfig``.  The special
        kind ``"trace"`` replays a recorded activity trace instead of
        sampling distributions (event-driven back-ends only) and requires
        :attr:`trace`.
    demand_kwargs:
        Extra distribution parameters (e.g. ``squared_cv``), stored as sorted
        ``(name, value)`` pairs so the spec stays hashable and fingerprints
        deterministically; dicts are accepted and canonicalised.
    trace:
        Recorded :class:`~repro.workload.OwnerActivityTrace` replayed by the
        event-driven back-ends when ``demand_kind == "trace"`` (``None``
        otherwise).  The trace is a frozen value object (horizon plus ordered
        busy intervals), so the spec stays hashable and fingerprints cover
        the replayed activity itself rather than its fitted summary.
    """

    owner: OwnerSpec
    demand_kind: str = "deterministic"
    demand_kwargs: tuple[tuple[str, float], ...] = ()
    trace: "OwnerActivityTrace | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "demand_kwargs", _freeze_kwargs(self.demand_kwargs))
        if self.demand_kind == "trace":
            if self.trace is None:
                raise ValueError(
                    "demand_kind 'trace' needs a recorded trace; pass "
                    "trace=OwnerActivityTrace(...) or build the spec via "
                    "StationSpec.from_trace"
                )
            for attr in ("horizon", "busy_intervals"):
                if not hasattr(self.trace, attr):
                    raise TypeError(
                        "trace must be an OwnerActivityTrace-like object with "
                        f"'horizon' and 'busy_intervals'; got {self.trace!r}"
                    )
            busy = sum(end - start for start, end in self.trace.busy_intervals)
            if self.trace.horizon > 0 and busy >= float(self.trace.horizon):
                # A fully busy owner would preempt the parallel task forever;
                # guard here (not only in from_trace) so a directly built
                # spec cannot hang the event-driven backend.
                raise ValueError(
                    "trace keeps the owner busy for its whole horizon "
                    "(utilization >= 1); no parallel work could ever run"
                )
            if self.demand_kwargs:
                raise ValueError(
                    "demand_kwargs do not apply to a trace replay; got "
                    f"{self.demand_kwargs!r}"
                )
        elif self.trace is not None:
            raise ValueError(
                "a trace only applies to demand_kind='trace', got "
                f"demand_kind={self.demand_kind!r}"
            )

    @classmethod
    def from_trace(
        cls, trace: "OwnerActivityTrace", fallback_demand: float = 10.0
    ) -> "StationSpec":
        """A station whose owner replays a recorded activity trace.

        The analytical :class:`OwnerSpec` is derived from the trace's
        measured statistics — mean busy-burst length and measured utilization
        — so reporting and the analytical extensions see the fitted
        equivalent while the event-driven back-ends replay the trace itself.
        ``fallback_demand`` stands in for the mean burst length of a trace
        with no (or only zero-length) bursts.
        """
        bursts = [end - start for start, end in trace.busy_intervals]
        mean_burst = (sum(bursts) / len(bursts)) if bursts else 0.0
        if mean_burst <= 0.0:
            mean_burst = float(fallback_demand)
        utilization = float(trace.utilization)
        if utilization >= 1.0:
            raise ValueError(
                "trace keeps the owner busy for its whole horizon "
                "(utilization >= 1); no parallel work could ever run"
            )
        owner = OwnerSpec(demand=mean_burst, utilization=utilization)
        return cls(owner=owner, demand_kind="trace", trace=trace)

    @property
    def utilization(self) -> float:
        """Owner utilization ``U_i`` of this station."""
        u = self.owner.utilization
        assert u is not None
        return float(u)

    @property
    def request_probability(self) -> float:
        """Owner request probability ``P_i`` of this station."""
        p = self.owner.request_probability
        assert p is not None
        return float(p)


#: Interarrival-process families understood by :class:`JobArrivalSpec`.
#: ``closed`` has no external arrival process at all — every job is submitted
#: by a closed-loop (think-time) source described by a :class:`JobClassSpec`.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "deterministic", "trace", "closed")

#: Admission discipline used when no explicit policy is configured (and the
#: only one the classless PR-3 job stream supports).  The full registry lives
#: in :mod:`repro.cluster.admission`.
FCFS_ADMISSION = "fcfs"


@dataclass(frozen=True)
class JobClassSpec:
    """One class of moldable parallel jobs in an open- or closed-loop stream.

    The classless :class:`JobArrivalSpec` describes a single stream of jobs
    that each occupy the *whole* cluster.  Job classes generalize that to
    space sharing: a class requests a width ``w <= W`` and runs on a station
    *subset*, so several jobs occupy disjoint parts of the cluster at once,
    admitted by one of the policies of :mod:`repro.cluster.admission`.

    Attributes
    ----------
    name:
        Class label (unique within one arrival spec); per-class queueing
        metrics are keyed by it.
    width:
        Number of workstations one job of this class occupies (validated
        against the scenario's ``W`` when the simulation runs).
    priority:
        Admission priority (higher = more important).  Only the ``priority``
        admission policy orders by it; FCFS and backfilling ignore it.
    weight:
        Relative share of the *open* arrival stream routed to this class
        (ignored for closed-loop classes).
    population:
        Number of closed-loop sources cycling through this class.  ``0`` (the
        default) makes the class *open*: its jobs come from the spec's
        interarrival process.  A positive population makes it *closed-loop*:
        each source thinks, submits one job, waits for it to complete and
        repeats — the interactive-user model of queueing theory.
    think_time:
        Mean think time of the closed-loop sources (required iff
        ``population > 0``; ``0`` submits back to back).
    think_time_kind:
        Distribution family of the think time (``"exponential"``,
        ``"deterministic"``, ...), resolved by
        :func:`repro.desim.make_variate`.
    think_time_kwargs:
        Extra think-time distribution parameters, canonicalised like
        :attr:`StationSpec.demand_kwargs`.
    """

    name: str
    width: int
    priority: int = 0
    weight: float = 1.0
    population: int = 0
    think_time: float | None = None
    think_time_kind: str = "exponential"
    think_time_kwargs: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a job class needs a non-empty name")
        if int(self.width) != self.width or self.width < 1:
            raise ValueError(f"width must be a positive integer, got {self.width!r}")
        object.__setattr__(self, "width", int(self.width))
        if int(self.priority) != self.priority:
            raise ValueError(f"priority must be an integer, got {self.priority!r}")
        object.__setattr__(self, "priority", int(self.priority))
        if not (math.isfinite(self.weight) and self.weight > 0.0):
            raise ValueError(f"weight must be positive and finite, got {self.weight!r}")
        if int(self.population) != self.population or self.population < 0:
            raise ValueError(
                f"population must be a non-negative integer, got {self.population!r}"
            )
        object.__setattr__(self, "population", int(self.population))
        if self.population > 0:
            if self.think_time is None or self.think_time < 0.0:
                raise ValueError(
                    "a closed-loop class (population > 0) needs a think_time >= 0, "
                    f"got {self.think_time!r}"
                )
        elif self.think_time is not None:
            raise ValueError(
                "think_time only applies to closed-loop classes "
                "(set population > 0)"
            )
        if not self.think_time_kind:
            raise ValueError("think_time_kind must be a non-empty name")
        object.__setattr__(
            self, "think_time_kwargs", _freeze_kwargs(self.think_time_kwargs)
        )

    @property
    def is_closed(self) -> bool:
        """Whether this class is driven by closed-loop (think-time) sources."""
        return self.population > 0

    @classmethod
    def open(
        cls, name: str, width: int, *, priority: int = 0, weight: float = 1.0
    ) -> "JobClassSpec":
        """An open class fed by the spec's interarrival process."""
        return cls(name=name, width=width, priority=priority, weight=weight)

    @classmethod
    def closed(
        cls,
        name: str,
        width: int,
        *,
        population: int,
        think_time: float,
        priority: int = 0,
        think_time_kind: str = "exponential",
        think_time_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
    ) -> "JobClassSpec":
        """A closed-loop class of ``population`` think-submit-wait sources."""
        return cls(
            name=name,
            width=width,
            priority=priority,
            population=population,
            think_time=think_time,
            think_time_kind=think_time_kind,
            think_time_kwargs=_freeze_kwargs(think_time_kwargs),
        )


@dataclass(frozen=True)
class JobArrivalSpec:
    """A stream of parallel jobs arriving at the cluster (open-system mode).

    The paper's model is *closed*: one parallel job at a time, run back to
    back.  An arrival spec generalizes a :class:`ScenarioSpec` to an *open*
    system — jobs arrive over time, queue for admission and compete for the
    same non-dedicated workstations — so response time under contention
    (rather than standalone speedup) can be studied.

    Attributes
    ----------
    kind:
        Interarrival-process family: ``"poisson"`` (exponential interarrivals
        with mean ``1/rate``), ``"deterministic"`` (every interarrival exactly
        ``1/rate``) or ``"trace"`` (replay ``interarrivals``, cycling when the
        run needs more arrivals than the trace holds).
    rate:
        Arrival rate ``lambda`` in jobs per unit time (``poisson`` and
        ``deterministic`` kinds).
    interarrivals:
        Recorded interarrival gaps for the ``trace`` kind; the first entry is
        the arrival time of the first job.
    demand_kind:
        Distribution family of the per-job total demand (``"deterministic"``,
        ``"exponential"``, ...); the mean is the scenario's nominal job
        demand ``J``.
    demand_kwargs:
        Extra demand-distribution parameters (e.g. ``squared_cv``), stored in
        the same canonical hashable form as
        :attr:`StationSpec.demand_kwargs`.
    max_concurrent_jobs:
        Admission width: how many jobs may occupy the cluster simultaneously.
        The default 1 is strict FCFS — each job gets the whole cluster, later
        arrivals queue — which makes a 1-station no-owner run an M/M/1 or
        M/D/1 queue exactly.  Mutually exclusive with ``job_classes``
        (per-class widths supersede the shared counter).
    warmup_fraction:
        Fraction of the earliest completed jobs discarded before steady-state
        queueing metrics are computed (warmup truncation for batch means).
    job_classes:
        Optional :class:`JobClassSpec` tuple turning the stream into a
        space-shared mix of moldable jobs (per-class widths, priorities and
        closed-loop sources).  Empty — the default — is the classless PR-3
        stream: every job occupies the whole cluster.
    admission_policy:
        Name of the admission discipline partitioning stations among the
        classed jobs, resolved by
        :func:`repro.cluster.admission.make_admission_policy` (``"fcfs"``,
        ``"easy-backfill"``, ``"priority"``).  Only meaningful with
        ``job_classes``.
    admission_kwargs:
        Admission-policy parameters (e.g. ``preemptive`` for the priority
        policy), canonicalised like :attr:`StationSpec.demand_kwargs`.
    """

    kind: str = "poisson"
    rate: float | None = None
    interarrivals: tuple[float, ...] = ()
    demand_kind: str = "deterministic"
    demand_kwargs: tuple[tuple[str, float], ...] = ()
    max_concurrent_jobs: int = 1
    warmup_fraction: float = 0.1
    job_classes: tuple[JobClassSpec, ...] = ()
    admission_policy: str = FCFS_ADMISSION
    admission_kwargs: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if self.kind == "closed":
            if self.rate is not None:
                raise ValueError("a closed arrival spec takes no rate")
            if self.interarrivals:
                raise ValueError("a closed arrival spec takes no interarrivals")
        elif self.kind == "trace":
            if self.rate is not None:
                raise ValueError("a trace-driven arrival spec takes no rate")
            gaps = tuple(float(gap) for gap in self.interarrivals)
            if not gaps:
                raise ValueError("a trace-driven arrival spec needs interarrivals")
            for gap in gaps:
                if not math.isfinite(gap) or gap < 0.0:
                    raise ValueError(
                        f"interarrival gaps must be finite and >= 0, got {gap!r}"
                    )
            object.__setattr__(self, "interarrivals", gaps)
        else:
            if self.interarrivals:
                raise ValueError(
                    f"interarrivals only apply to the trace kind, not {self.kind!r}"
                )
            if self.rate is None or not math.isfinite(self.rate) or self.rate <= 0.0:
                raise ValueError(
                    f"{self.kind} arrivals need a positive finite rate, got {self.rate!r}"
                )
            object.__setattr__(self, "rate", float(self.rate))
        if not self.demand_kind:
            raise ValueError("demand_kind must be a non-empty name")
        object.__setattr__(self, "demand_kwargs", _freeze_kwargs(self.demand_kwargs))
        if self.max_concurrent_jobs < 1:
            raise ValueError(
                f"max_concurrent_jobs must be >= 1, got {self.max_concurrent_jobs!r}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction!r}"
            )
        object.__setattr__(self, "job_classes", tuple(self.job_classes))
        for job_class in self.job_classes:
            if not isinstance(job_class, JobClassSpec):
                raise TypeError(
                    f"job_classes must be JobClassSpec instances, got {job_class!r}"
                )
        names = [job_class.name for job_class in self.job_classes]
        if len(set(names)) != len(names):
            raise ValueError(f"job class names must be unique, got {names!r}")
        if not self.admission_policy:
            raise ValueError("admission_policy must be a non-empty name")
        object.__setattr__(
            self, "admission_kwargs", _freeze_kwargs(self.admission_kwargs)
        )
        if self.job_classes:
            if self.max_concurrent_jobs != 1:
                raise ValueError(
                    "job_classes and max_concurrent_jobs are mutually exclusive: "
                    "per-class widths supersede the shared admission counter"
                )
        else:
            if self.admission_policy != FCFS_ADMISSION or self.admission_kwargs:
                raise ValueError(
                    "admission policies operate on job classes; set job_classes "
                    "to use a non-default admission_policy"
                )
        if self.kind == "closed":
            if not self.job_classes or not all(
                job_class.is_closed for job_class in self.job_classes
            ):
                raise ValueError(
                    "the closed kind needs job_classes made entirely of "
                    "closed-loop classes (population > 0)"
                )
        elif self.job_classes and not any(
            not job_class.is_closed for job_class in self.job_classes
        ):
            raise ValueError(
                "an arrival process with only closed-loop classes should use "
                "kind='closed' (the interarrival stream would feed no class)"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def poisson(cls, rate: float, **kwargs: Any) -> "JobArrivalSpec":
        """Poisson arrivals at ``rate`` jobs per unit time."""
        return cls(kind="poisson", rate=rate, **kwargs)

    @classmethod
    def deterministic(cls, rate: float, **kwargs: Any) -> "JobArrivalSpec":
        """Evenly spaced arrivals, one every ``1/rate`` time units."""
        return cls(kind="deterministic", rate=rate, **kwargs)

    @classmethod
    def from_trace(
        cls, interarrivals: Sequence[float], **kwargs: Any
    ) -> "JobArrivalSpec":
        """Replay recorded interarrival gaps (cycled if the run is longer)."""
        return cls(kind="trace", interarrivals=tuple(interarrivals), **kwargs)

    @classmethod
    def closed_loop(
        cls, job_classes: Sequence[JobClassSpec], **kwargs: Any
    ) -> "JobArrivalSpec":
        """A purely closed-loop stream: every job comes from a think-time source."""
        return cls(kind="closed", job_classes=tuple(job_classes), **kwargs)

    # -- derived views -----------------------------------------------------

    @property
    def mean_interarrival(self) -> float:
        """Mean gap between consecutive *open* arrivals.

        ``inf`` for the closed kind (there is no external arrival process).
        """
        if self.kind == "closed":
            return math.inf
        if self.kind == "trace":
            return float(sum(self.interarrivals) / len(self.interarrivals))
        assert self.rate is not None
        return 1.0 / self.rate

    @property
    def mean_rate(self) -> float:
        """Long-run *open* arrival rate ``lambda`` (jobs per unit time)."""
        if self.kind == "closed":
            return 0.0
        mean = self.mean_interarrival
        return math.inf if mean == 0.0 else 1.0 / mean

    @property
    def is_space_shared(self) -> bool:
        """Whether jobs carry per-class widths (the admission subsystem runs)."""
        return bool(self.job_classes)

    @property
    def open_class_indices(self) -> tuple[int, ...]:
        """Indices of the classes fed by the open interarrival stream."""
        return tuple(
            index
            for index, job_class in enumerate(self.job_classes)
            if not job_class.is_closed
        )

    @property
    def closed_class_indices(self) -> tuple[int, ...]:
        """Indices of the closed-loop (think-time) classes."""
        return tuple(
            index
            for index, job_class in enumerate(self.job_classes)
            if job_class.is_closed
        )

    @property
    def total_population(self) -> int:
        """Total number of closed-loop sources across all classes."""
        return sum(job_class.population for job_class in self.job_classes)

    def interarrival(self, index: int) -> float | None:
        """Deterministic interarrival of the ``index``-th job, if one exists.

        Returns the gap for the ``deterministic`` and ``trace`` kinds and
        ``None`` for stochastic kinds (the simulator samples those from its
        arrival stream).
        """
        if self.kind == "deterministic":
            assert self.rate is not None
            return 1.0 / self.rate
        if self.kind == "trace":
            return self.interarrivals[index % len(self.interarrivals)]
        return None

    def offered_load(self, service_rate: float) -> float:
        """Offered load ``rho = lambda / mu`` against a given service rate."""
        if service_rate <= 0.0:
            raise ValueError(f"service_rate must be positive, got {service_rate!r}")
        return self.mean_rate / service_rate


@dataclass(frozen=True)
class ScenarioSpec:
    """A simulation scenario: per-workstation owners, placement and scheduling.

    This is the generalised description the simulation back-ends consume.  The
    paper's model is the special case of ``W`` identical stations, a balanced
    task split and the static one-task-per-station policy — which is exactly
    what :class:`~repro.cluster.simulation.SimulationConfig` builds when no
    scenario is given, so every homogeneous experiment reduces to this layer
    bitwise.

    Attributes
    ----------
    stations:
        One :class:`StationSpec` per workstation (system size is the length).
    policy:
        Task-scheduling policy name, resolved by
        :func:`repro.cluster.policies.make_policy` in the event-driven
        backend.  The discrete back-ends support only :data:`STATIC_POLICY`.
    policy_kwargs:
        Policy parameters (e.g. ``chunks_per_station`` for self-scheduling),
        canonicalised like :attr:`StationSpec.demand_kwargs`.
    imbalance:
        Relative task-demand imbalance of the placement (0 = the paper's
        perfectly balanced split), used by the event-driven backend.
    arrivals:
        Optional :class:`JobArrivalSpec` turning the scenario into an *open*
        system (a stream of competing jobs).  ``None`` — the default, and the
        paper's model — is the closed system: one job at a time, back to back.
    """

    stations: tuple[StationSpec, ...]
    policy: str = STATIC_POLICY
    policy_kwargs: tuple[tuple[str, float], ...] = ()
    imbalance: float = 0.0
    arrivals: JobArrivalSpec | None = None

    def __post_init__(self) -> None:
        if not self.stations:
            raise ValueError("a scenario needs at least one workstation")
        object.__setattr__(self, "stations", tuple(self.stations))
        for station in self.stations:
            if not isinstance(station, StationSpec):
                raise TypeError(
                    f"stations must be StationSpec instances, got {station!r}"
                )
        if not self.policy:
            raise ValueError("policy must be a non-empty name")
        object.__setattr__(self, "policy_kwargs", _freeze_kwargs(self.policy_kwargs))
        if not 0.0 <= self.imbalance < 1.0:
            raise ValueError(f"imbalance must be in [0, 1), got {self.imbalance!r}")
        if self.arrivals is not None and not isinstance(self.arrivals, JobArrivalSpec):
            raise TypeError(
                f"arrivals must be a JobArrivalSpec or None, got {self.arrivals!r}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        workstations: int,
        owner: OwnerSpec,
        *,
        demand_kind: str = "deterministic",
        demand_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
        policy: str = STATIC_POLICY,
        policy_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
        imbalance: float = 0.0,
        arrivals: JobArrivalSpec | None = None,
    ) -> "ScenarioSpec":
        """The paper's homogeneous cluster expressed as a scenario."""
        if workstations < 1:
            raise ValueError(f"workstations must be >= 1, got {workstations!r}")
        station = StationSpec(
            owner=owner, demand_kind=demand_kind, demand_kwargs=_freeze_kwargs(demand_kwargs)
        )
        return cls(
            stations=tuple([station] * workstations),
            policy=policy,
            policy_kwargs=_freeze_kwargs(policy_kwargs),
            imbalance=imbalance,
            arrivals=arrivals,
        )

    @classmethod
    def from_owners(
        cls,
        owners: Sequence[OwnerSpec],
        *,
        demand_kind: str = "deterministic",
        policy: str = STATIC_POLICY,
        policy_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
        imbalance: float = 0.0,
        arrivals: JobArrivalSpec | None = None,
    ) -> "ScenarioSpec":
        """One station per owner spec, all sharing one demand-distribution kind."""
        return cls(
            stations=tuple(
                StationSpec(owner=owner, demand_kind=demand_kind) for owner in owners
            ),
            policy=policy,
            policy_kwargs=_freeze_kwargs(policy_kwargs),
            imbalance=imbalance,
            arrivals=arrivals,
        )

    @classmethod
    def from_utilizations(
        cls,
        utilizations: Sequence[float],
        owner_demand: float = 10.0,
        **kwargs: Any,
    ) -> "ScenarioSpec":
        """Build a scenario from a per-workstation owner-utilization vector."""
        owners = [
            OwnerSpec(demand=owner_demand, utilization=float(u)) for u in utilizations
        ]
        return cls.from_owners(owners, **kwargs)

    @classmethod
    def from_traces(
        cls,
        traces: Sequence["OwnerActivityTrace"],
        *,
        policy: str = STATIC_POLICY,
        policy_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
        imbalance: float = 0.0,
        arrivals: JobArrivalSpec | None = None,
    ) -> "ScenarioSpec":
        """One trace-replaying station per recorded owner-activity trace.

        This is the measured-cluster entry point: feed it the traces of an
        :func:`~repro.workload.uptime_survey`-style measurement and the
        event-driven back-ends simulate the recorded owners rather than
        fitted distributions.
        """
        return cls(
            stations=tuple(StationSpec.from_trace(trace) for trace in traces),
            policy=policy,
            policy_kwargs=_freeze_kwargs(policy_kwargs),
            imbalance=imbalance,
            arrivals=arrivals,
        )

    # -- derived views -----------------------------------------------------

    @property
    def workstations(self) -> int:
        """System size ``W``."""
        return len(self.stations)

    @property
    def owners(self) -> tuple[OwnerSpec, ...]:
        """The per-workstation owner specs (for the analytical extension)."""
        return tuple(station.owner for station in self.stations)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every station is identical (the paper's assumption)."""
        return all(station == self.stations[0] for station in self.stations[1:])

    @property
    def mean_utilization(self) -> float:
        """Cluster-average owner utilization.

        For a homogeneous scenario this returns the station's utilization
        *exactly* (no float summation round-off), so the homogeneous reduction
        stays bitwise-identical to the legacy path.
        """
        utilizations = [station.utilization for station in self.stations]
        first = utilizations[0]
        if all(u == first for u in utilizations[1:]):
            return first
        return float(sum(utilizations) / len(utilizations))

    @property
    def max_utilization(self) -> float:
        return max(station.utilization for station in self.stations)

    @property
    def is_open(self) -> bool:
        """Whether this scenario describes an open system (a job stream)."""
        return self.arrivals is not None

    def with_policy(
        self,
        policy: str,
        policy_kwargs: Mapping[str, float] | Iterable[tuple[str, float]] | None = None,
    ) -> "ScenarioSpec":
        """Copy of this scenario under a different scheduling policy."""
        return replace(
            self, policy=policy, policy_kwargs=_freeze_kwargs(policy_kwargs)
        )

    def with_arrivals(self, arrivals: JobArrivalSpec | None) -> "ScenarioSpec":
        """Copy of this scenario with a different job-arrival process."""
        return replace(self, arrivals=arrivals)


@dataclass(frozen=True)
class JobSpec:
    """A perfectly parallel job of total demand ``J`` split into equal tasks.

    Attributes
    ----------
    total_demand:
        Total demand ``J`` of the parallel job in time units.
    rounding:
        Policy used to map the fractional per-task demand onto the integer
        discrete-time model (see :class:`TaskRounding`).
    """

    total_demand: float
    rounding: TaskRounding = TaskRounding.ROUND

    def __post_init__(self) -> None:
        if self.total_demand <= 0:
            raise ValueError(
                f"total_demand must be positive, got {self.total_demand!r}"
            )
        object.__setattr__(self, "rounding", TaskRounding(self.rounding))

    def task_demand(self, workstations: int) -> float:
        """Per-task demand ``T = J / W`` under this job's rounding policy."""
        return split_job_demand(self.total_demand, workstations, self.rounding)

    def task_ratio(self, workstations: int, owner: OwnerSpec) -> float:
        """Task ratio ``T / O`` for a given system size and owner behaviour."""
        return self.task_demand(workstations) / owner.demand

    def scaled(self, factor: float) -> "JobSpec":
        """Return a copy whose total demand is multiplied by ``factor``."""
        return replace(self, total_demand=self.total_demand * factor)


@dataclass(frozen=True)
class SystemSpec:
    """A homogeneous cluster of ``workstations`` identically loaded nodes."""

    workstations: int
    owner: OwnerSpec = field(default_factory=lambda: OwnerSpec.from_utilization(0.1))

    def __post_init__(self) -> None:
        if self.workstations < 1:
            raise ValueError(
                f"workstations must be >= 1, got {self.workstations!r}"
            )

    def with_size(self, workstations: int) -> "SystemSpec":
        """Return a copy of this system with a different node count."""
        return replace(self, workstations=workstations)

    def with_owner(self, owner: OwnerSpec) -> "SystemSpec":
        """Return a copy of this system with a different owner behaviour."""
        return replace(self, owner=owner)


@dataclass(frozen=True)
class ModelInputs:
    """Fully resolved inputs to the analytical model for a single evaluation.

    This is the flattened (``T``, ``W``, ``O``, ``P``) tuple the equations of
    Section 2 operate on, produced from a (:class:`JobSpec`,
    :class:`SystemSpec`) pair by :meth:`ModelInputs.from_specs`.
    """

    task_demand: float
    workstations: int
    owner_demand: float
    request_probability: float

    def __post_init__(self) -> None:
        if self.task_demand <= 0:
            raise ValueError(f"task_demand must be positive, got {self.task_demand!r}")
        if self.workstations < 1:
            raise ValueError(f"workstations must be >= 1, got {self.workstations!r}")
        if self.owner_demand <= 0:
            raise ValueError(f"owner_demand must be positive, got {self.owner_demand!r}")
        if not 0.0 <= self.request_probability <= 1.0:
            raise ValueError(
                "request_probability must be in [0, 1], "
                f"got {self.request_probability!r}"
            )

    @classmethod
    def from_specs(cls, job: JobSpec, system: SystemSpec) -> "ModelInputs":
        """Resolve a job/system pair into raw model inputs.

        Note: for :attr:`TaskRounding.INTERPOLATE` the task demand kept here is
        the *fractional* ``J / W``; the analytical routines blend the two
        adjacent integer evaluations.
        """
        t = job.task_demand(system.workstations)
        owner = system.owner
        assert owner.request_probability is not None
        return cls(
            task_demand=t,
            workstations=system.workstations,
            owner_demand=owner.demand,
            request_probability=owner.request_probability,
        )

    @property
    def utilization(self) -> float:
        """Owner utilization ``U`` implied by ``O`` and ``P`` (Eq. 8)."""
        return request_probability_to_utilization(
            self.request_probability, self.owner_demand
        )

    @property
    def task_ratio(self) -> float:
        """Task ratio ``T / O``."""
        return self.task_demand / self.owner_demand

    @property
    def job_demand(self) -> float:
        """Total job demand ``J = T * W`` implied by these inputs."""
        return self.task_demand * self.workstations


def validate_utilizations(utilizations: Iterable[float]) -> Sequence[float]:
    """Validate a collection of owner utilizations (each in ``[0, 1)``).

    Returns the values as a tuple so callers can iterate repeatedly.
    """
    values = tuple(float(u) for u in utilizations)
    for u in values:
        if not 0.0 <= u < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {u!r}")
    return values
