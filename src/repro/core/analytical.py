"""The analytical model of Section 2 of Leutenegger & Sun (1993).

The model is a discrete-time abstraction of one perfectly parallel job running
on ``W`` non-dedicated workstations:

* the job has total demand ``J`` split into ``W`` equal tasks of demand
  ``T = J / W`` (one per workstation);
* after every unit of parallel work the workstation owner requests the CPU
  with probability ``P`` (geometric think time, mean ``1/P``);
* an owner process runs for ``O`` units with preemptive priority, after which
  the parallel task is guaranteed at least one unit of work before the owner
  may request again.

Consequently the number of interruptions per task is ``Binomial(T, P)`` and

* ``task time = T + n * O``                                      (Eq. 1)
* ``E_t = T + O * E[n] = T + O * sum_i i * Bin(T, i, P)``        (Eq. 3)
* ``E_j = T + O * E[max over W i.i.d. n]``                       (Eqs. 4-7)
* ``U = O / (O + 1/P)``                                          (Eq. 8)

This module exposes both a low-level functional API operating on raw
``(T, W, O, P)`` values and a higher-level API operating on
:class:`~repro.core.params.JobSpec` / :class:`~repro.core.params.SystemSpec`
pairs, which also handles fractional per-task demands via the job's
:class:`~repro.core.params.TaskRounding` policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from .distributions import (
    binomial_cdf,
    binomial_mean,
    binomial_pmf,
    max_of_iid_mean,
    max_of_iid_pmf,
)
from .params import (
    JobSpec,
    ModelInputs,
    OwnerSpec,
    SystemSpec,
    TaskRounding,
    request_probability_to_utilization,
)

__all__ = [
    "expected_task_time",
    "expected_job_time",
    "task_time_distribution",
    "job_time_distribution",
    "job_time_quantile",
    "job_time_variance",
    "job_time_survival",
    "worst_case_task_time",
    "ModelEvaluation",
    "evaluate_inputs",
    "evaluate",
    "sweep_workstations",
    "sweep_utilizations",
]


def _check_raw_inputs(task_demand: float, owner_demand: float, prob: float) -> None:
    if task_demand <= 0:
        raise ValueError(f"task_demand must be positive, got {task_demand!r}")
    if owner_demand <= 0:
        raise ValueError(f"owner_demand must be positive, got {owner_demand!r}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"request probability must be in [0, 1], got {prob!r}")


def expected_task_time(
    task_demand: int | float,
    owner_demand: float,
    request_probability: float,
) -> float:
    """Expected completion time of one parallel task, ``E_t`` (Eq. 3).

    ``E_t = T + O * E[Binomial(T, P)] = T + O * T * P``.  The closed form is
    exact, so fractional ``T`` is accepted directly (the binomial mean extends
    linearly in the trial count).

    >>> expected_task_time(100, 10.0, 0.0)
    100.0
    >>> expected_task_time(100, 10.0, 0.01)
    110.0
    """
    _check_raw_inputs(task_demand, owner_demand, request_probability)
    return float(task_demand) + owner_demand * float(task_demand) * request_probability


def worst_case_task_time(
    task_demand: int | float, owner_demand: float
) -> float:
    """Deterministic upper bound ``T + T * O`` on task completion time.

    The model guarantees a task completes in at most ``T + (T x O)`` units
    because at most one owner process can arrive per unit of parallel work.
    """
    if task_demand <= 0:
        raise ValueError(f"task_demand must be positive, got {task_demand!r}")
    if owner_demand <= 0:
        raise ValueError(f"owner_demand must be positive, got {owner_demand!r}")
    return float(task_demand) + float(task_demand) * owner_demand


def task_time_distribution(
    task_demand: int,
    owner_demand: float,
    request_probability: float,
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Distribution of a single task's completion time.

    Returns ``(support, pmf)`` where ``support[k] = T + k * O`` for
    ``k = 0 .. T`` and ``pmf[k] = Bin(T, k, P)``.
    """
    _check_raw_inputs(task_demand, owner_demand, request_probability)
    trials = int(task_demand)
    if trials != task_demand:
        raise ValueError(
            "task_time_distribution requires an integer task_demand; "
            f"got {task_demand!r} (use the JobSpec rounding policy)"
        )
    pmf = binomial_pmf(trials, request_probability)
    interruptions = np.arange(trials + 1, dtype=np.float64)
    support = trials + interruptions * owner_demand
    return support, pmf


def job_time_distribution(
    task_demand: int,
    workstations: int,
    owner_demand: float,
    request_probability: float,
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Distribution of the job completion time (max over tasks).

    Returns ``(support, pmf)`` where ``support[n] = T + n * O`` and ``pmf[n]``
    is ``Max[W, n]`` of Eq. 6: the probability that the most-interrupted task
    suffered exactly ``n`` owner interruptions.
    """
    _check_raw_inputs(task_demand, owner_demand, request_probability)
    if workstations < 1:
        raise ValueError(f"workstations must be >= 1, got {workstations!r}")
    trials = int(task_demand)
    if trials != task_demand:
        raise ValueError(
            "job_time_distribution requires an integer task_demand; "
            f"got {task_demand!r} (use the JobSpec rounding policy)"
        )
    cdf = binomial_cdf(trials, request_probability)
    max_pmf = max_of_iid_pmf(cdf, workstations)
    interruptions = np.arange(trials + 1, dtype=np.float64)
    support = trials + interruptions * owner_demand
    return support, max_pmf


def _expected_job_time_integer(
    task_demand: int,
    workstations: int,
    owner_demand: float,
    request_probability: float,
) -> float:
    """``E_j`` for an integer task demand (Eq. 7)."""
    trials = int(task_demand)
    if trials == 0:
        return 0.0
    cdf = binomial_cdf(trials, request_probability)
    expected_max_interruptions = max_of_iid_mean(cdf, workstations)
    return trials + owner_demand * expected_max_interruptions


def expected_job_time(
    task_demand: int | float,
    workstations: int,
    owner_demand: float,
    request_probability: float,
    *,
    interpolate: bool = True,
) -> float:
    """Expected job completion time ``E_j`` (Eq. 7).

    ``E_j = T + O * E[max_{w <= W} n_w]`` where the ``n_w`` are i.i.d.
    ``Binomial(T, P)``.

    Parameters
    ----------
    task_demand:
        Per-task demand ``T``.  May be fractional when ``interpolate`` is
        true, in which case the result is the linear blend of the evaluations
        at ``floor(T)`` and ``ceil(T)``.
    workstations:
        Number of tasks / workstations ``W``.
    owner_demand:
        Owner process demand ``O``.
    request_probability:
        Per-unit owner request probability ``P``.
    interpolate:
        Whether fractional ``T`` is allowed (blended); if false a fractional
        ``T`` raises ``ValueError``.
    """
    _check_raw_inputs(task_demand, owner_demand, request_probability)
    if workstations < 1:
        raise ValueError(f"workstations must be >= 1, got {workstations!r}")
    if request_probability == 0.0:
        return float(task_demand)
    lower = math.floor(task_demand)
    upper = math.ceil(task_demand)
    if lower == upper or lower == task_demand:
        return _expected_job_time_integer(
            int(task_demand), workstations, owner_demand, request_probability
        )
    if not interpolate:
        raise ValueError(
            f"task_demand {task_demand!r} is not an integer and interpolation "
            "is disabled"
        )
    lower = max(1, lower)
    frac = task_demand - math.floor(task_demand)
    low_val = _expected_job_time_integer(
        lower, workstations, owner_demand, request_probability
    )
    high_val = _expected_job_time_integer(
        upper, workstations, owner_demand, request_probability
    )
    return (1.0 - frac) * low_val + frac * high_val


def job_time_variance(
    task_demand: int,
    workstations: int,
    owner_demand: float,
    request_probability: float,
) -> float:
    """Variance of the job completion time.

    Follows directly from the max-order-statistic distribution (Eqs. 4-6); the
    paper only reports expectations, but the variance quantifies how much the
    "one slow workstation" effect spreads job times — useful when sizing
    deadlines rather than averages.
    """
    support, pmf = job_time_distribution(
        task_demand, workstations, owner_demand, request_probability
    )
    mean = float(np.dot(support, pmf))
    return float(np.dot((support - mean) ** 2, pmf))


def job_time_survival(
    task_demand: int,
    workstations: int,
    owner_demand: float,
    request_probability: float,
    deadline: float,
) -> float:
    """Probability that the job is still running at ``deadline``.

    ``P(job time > deadline)`` — the tail question a user with a deadline
    actually asks.  Deadlines below the interference-free time ``T`` return
    1.0; deadlines above the worst case ``T + T*O`` return 0.0.
    """
    support, pmf = job_time_distribution(
        task_demand, workstations, owner_demand, request_probability
    )
    return float(pmf[support > deadline].sum())


def job_time_quantile(
    task_demand: int,
    workstations: int,
    owner_demand: float,
    request_probability: float,
    quantile: float,
) -> float:
    """Quantile of the job completion-time distribution.

    Useful for tail-latency style questions the paper does not plot but that
    follow directly from the same distribution (e.g. "what job time is
    exceeded only 5% of the time?").
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile!r}")
    support, pmf = job_time_distribution(
        task_demand, workstations, owner_demand, request_probability
    )
    cdf = np.cumsum(pmf)
    idx = int(np.searchsorted(cdf, quantile, side="left"))
    idx = min(idx, len(support) - 1)
    return float(support[idx])


@dataclass(frozen=True)
class ModelEvaluation:
    """Result of evaluating the analytical model at one parameter point.

    Carries the resolved inputs alongside the two expectations of the paper
    (``E_t`` and ``E_j``); derived metrics (speedup, efficiency, weighted
    variants) live in :mod:`repro.core.metrics` and take this object as input.
    """

    job_demand: float
    task_demand: float
    workstations: int
    owner_demand: float
    request_probability: float
    utilization: float
    expected_task_time: float
    expected_job_time: float

    @property
    def task_ratio(self) -> float:
        """Task ratio ``T / O`` — the paper's headline feasibility metric."""
        return self.task_demand / self.owner_demand

    @property
    def interference_overhead(self) -> float:
        """Expected extra job time caused by owner interference, ``E_j - T``."""
        return self.expected_job_time - self.task_demand

    @property
    def mean_interruptions_per_task(self) -> float:
        """Expected number of owner interruptions of a single task, ``T * P``."""
        return self.task_demand * self.request_probability


def evaluate_inputs(inputs: ModelInputs, *, job_demand: float | None = None) -> ModelEvaluation:
    """Evaluate the model at fully resolved raw inputs.

    ``job_demand`` defaults to ``T * W``; callers resolving a
    :class:`~repro.core.params.JobSpec` pass the original ``J`` so the speedup
    metrics use the true serial demand rather than the rounded one.
    """
    et = expected_task_time(
        inputs.task_demand, inputs.owner_demand, inputs.request_probability
    )
    ej = expected_job_time(
        inputs.task_demand,
        inputs.workstations,
        inputs.owner_demand,
        inputs.request_probability,
    )
    return ModelEvaluation(
        job_demand=float(job_demand if job_demand is not None else inputs.job_demand),
        task_demand=inputs.task_demand,
        workstations=inputs.workstations,
        owner_demand=inputs.owner_demand,
        request_probability=inputs.request_probability,
        utilization=inputs.utilization,
        expected_task_time=et,
        expected_job_time=ej,
    )


def evaluate(job: JobSpec, system: SystemSpec) -> ModelEvaluation:
    """Evaluate the analytical model for a job on a system.

    This is the main entry point used by the experiment harness: it resolves
    the per-task demand according to the job's rounding policy (including the
    smooth ``INTERPOLATE`` mode) and returns the two expectations of Section 2.
    """
    inputs = ModelInputs.from_specs(job, system)
    owner = system.owner
    assert owner.request_probability is not None
    if job.rounding is TaskRounding.INTERPOLATE:
        et = expected_task_time(
            inputs.task_demand, owner.demand, owner.request_probability
        )
        ej = expected_job_time(
            inputs.task_demand,
            system.workstations,
            owner.demand,
            owner.request_probability,
            interpolate=True,
        )
        return ModelEvaluation(
            job_demand=job.total_demand,
            task_demand=inputs.task_demand,
            workstations=system.workstations,
            owner_demand=owner.demand,
            request_probability=owner.request_probability,
            utilization=request_probability_to_utilization(
                owner.request_probability, owner.demand
            ),
            expected_task_time=et,
            expected_job_time=ej,
        )
    return evaluate_inputs(inputs, job_demand=job.total_demand)


def sweep_workstations(
    job: JobSpec,
    owner: OwnerSpec,
    workstation_counts: Sequence[int],
) -> list[ModelEvaluation]:
    """Evaluate the model for each system size in ``workstation_counts``.

    This is the sweep behind Figures 1-6 and 9 of the paper.
    """
    results: list[ModelEvaluation] = []
    for w in workstation_counts:
        system = SystemSpec(workstations=int(w), owner=owner)
        results.append(evaluate(job, system))
    return results


def sweep_utilizations(
    job: JobSpec,
    system: SystemSpec,
    utilizations: Sequence[float],
) -> list[ModelEvaluation]:
    """Evaluate the model for each owner utilization in ``utilizations``."""
    results: list[ModelEvaluation] = []
    for u in utilizations:
        owner = system.owner.with_utilization(float(u))
        results.append(evaluate(job, system.with_owner(owner)))
    return results
