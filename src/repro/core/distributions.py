"""Discrete probability distributions used by the analytical model.

The analytical model of the paper needs three distributions:

* the **binomial** distribution of the number of owner interruptions suffered
  by one task (Eq. 2),
* the **geometric** distribution of owner think times (Section 2.1), and
* the distribution of the **maximum** of ``W`` i.i.d. binomials, which gives
  the job completion time (Eqs. 4-6).

All pmf/cdf evaluations are vectorised over the support and computed in log
space (via :func:`scipy.special.gammaln`) so that large task demands
(``T`` in the tens of thousands, as needed for the scaled-problem experiments)
do not overflow or lose precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import NDArray
from scipy import special

__all__ = [
    "binomial_pmf",
    "binomial_cdf",
    "binomial_mean",
    "binomial_variance",
    "max_of_iid_cdf",
    "max_of_iid_pmf",
    "max_of_iid_mean",
    "Binomial",
    "Geometric",
    "Deterministic",
    "DiscreteDistribution",
]


def _validate_trials_prob(trials: int, prob: float) -> None:
    if trials < 0:
        raise ValueError(f"number of trials must be >= 0, got {trials!r}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {prob!r}")


def binomial_pmf(trials: int, prob: float) -> NDArray[np.float64]:
    """Full probability mass function of ``Binomial(trials, prob)``.

    Returns an array of length ``trials + 1`` whose ``k``-th entry is
    ``P(N = k)`` (Eq. 2 of the paper).  Computed in log space for numerical
    stability; degenerate cases (``prob`` of 0 or 1, ``trials`` of 0) are
    handled exactly.

    >>> binomial_pmf(2, 0.5).tolist()
    [0.25, 0.5, 0.25]
    """
    _validate_trials_prob(trials, prob)
    n = int(trials)
    if n == 0:
        return np.array([1.0])
    if prob == 0.0:
        out = np.zeros(n + 1)
        out[0] = 1.0
        return out
    if prob == 1.0:
        out = np.zeros(n + 1)
        out[-1] = 1.0
        return out
    k = np.arange(n + 1, dtype=np.float64)
    log_coeff = (
        special.gammaln(n + 1.0)
        - special.gammaln(k + 1.0)
        - special.gammaln(n - k + 1.0)
    )
    log_pmf = log_coeff + k * math.log(prob) + (n - k) * math.log1p(-prob)
    pmf = np.exp(log_pmf)
    # Renormalise tiny floating error so the mass sums to exactly one; this
    # keeps the max-order-statistic powers well behaved for very large W.
    total = pmf.sum()
    if total > 0:
        pmf /= total
    return pmf


def binomial_cdf(trials: int, prob: float) -> NDArray[np.float64]:
    """Cumulative distribution ``S[n] = P(N <= n)`` of Eq. 4, for all ``n``.

    Returns an array of length ``trials + 1``; the last entry is exactly 1.
    """
    pmf = binomial_pmf(trials, prob)
    cdf = np.cumsum(pmf)
    cdf[-1] = 1.0
    return np.clip(cdf, 0.0, 1.0)


def binomial_mean(trials: int, prob: float) -> float:
    """Mean of ``Binomial(trials, prob)`` (= ``trials * prob``)."""
    _validate_trials_prob(trials, prob)
    return float(trials) * float(prob)


def binomial_variance(trials: int, prob: float) -> float:
    """Variance of ``Binomial(trials, prob)``."""
    _validate_trials_prob(trials, prob)
    return float(trials) * float(prob) * (1.0 - float(prob))


def max_of_iid_cdf(cdf: NDArray[np.float64], count: int) -> NDArray[np.float64]:
    """CDF of the maximum of ``count`` i.i.d. variables with the given CDF.

    Implements Eq. 5 of the paper: ``C[W, n] = S[n] ** W``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    return np.asarray(cdf, dtype=np.float64) ** int(count)


def max_of_iid_pmf(cdf: NDArray[np.float64], count: int) -> NDArray[np.float64]:
    """PMF of the maximum of ``count`` i.i.d. variables (Eq. 6).

    ``Max[W, n] = C[W, n] - C[W, n-1]`` with ``C[W, -1] = 0``.
    """
    max_cdf = max_of_iid_cdf(cdf, count)
    pmf = np.diff(max_cdf, prepend=0.0)
    return np.clip(pmf, 0.0, 1.0)


def max_of_iid_mean(cdf: NDArray[np.float64], count: int) -> float:
    """Mean of the maximum of ``count`` i.i.d. non-negative integer variables.

    Uses the survival-function identity ``E[max] = sum_n (1 - C[W, n])`` over
    ``n = 0 .. support-1``, which is numerically gentler than summing
    ``n * pmf`` when the pmf has long flat tails.
    """
    max_cdf = max_of_iid_cdf(cdf, count)
    # Support is 0..len(cdf)-1; E[X] = sum_{n=0}^{len-2} P(X > n).
    return float(np.sum(1.0 - max_cdf[:-1]))


@dataclass(frozen=True)
class Binomial:
    """Binomial distribution object with sampling support.

    This is a light object-oriented wrapper over the functional API above,
    convenient for the simulator and for property-based tests.
    """

    trials: int
    prob: float

    def __post_init__(self) -> None:
        _validate_trials_prob(self.trials, self.prob)

    @property
    def mean(self) -> float:
        return binomial_mean(self.trials, self.prob)

    @property
    def variance(self) -> float:
        return binomial_variance(self.trials, self.prob)

    def pmf(self) -> NDArray[np.float64]:
        return binomial_pmf(self.trials, self.prob)

    def cdf(self) -> NDArray[np.float64]:
        return binomial_cdf(self.trials, self.prob)

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] = 1
    ) -> NDArray[np.int64]:
        """Draw samples using numpy's generator (used by the Monte-Carlo sampler)."""
        return rng.binomial(self.trials, self.prob, size=size)

    def max_pmf(self, count: int) -> NDArray[np.float64]:
        """PMF of the maximum over ``count`` i.i.d. copies."""
        return max_of_iid_pmf(self.cdf(), count)

    def max_mean(self, count: int) -> float:
        """Mean of the maximum over ``count`` i.i.d. copies."""
        return max_of_iid_mean(self.cdf(), count)


@dataclass(frozen=True)
class Geometric:
    """Geometric (number of failures before first success) think-time model.

    The paper assumes a discrete geometric think time with mean ``1/P``: at
    each time unit the owner requests the processor with probability ``P``.
    ``mean`` is ``1/P``; ``P == 0`` models a dedicated workstation (infinite
    think time).
    """

    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.prob!r}")

    @property
    def mean(self) -> float:
        if self.prob == 0.0:
            return math.inf
        return 1.0 / self.prob

    @property
    def variance(self) -> float:
        if self.prob == 0.0:
            return math.inf
        return (1.0 - self.prob) / (self.prob**2)

    def pmf(self, k: int) -> float:
        """P(first request happens after exactly ``k`` units of thinking), k >= 1."""
        if k < 1:
            return 0.0
        if self.prob == 0.0:
            return 0.0
        return (1.0 - self.prob) ** (k - 1) * self.prob

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] = 1
    ) -> NDArray[np.int64]:
        """Draw geometric samples (support starting at 1)."""
        if self.prob == 0.0:
            raise ValueError("cannot sample a geometric with prob = 0 (infinite mean)")
        return rng.geometric(self.prob, size=size)


@dataclass(frozen=True)
class Deterministic:
    """Degenerate distribution placing all mass at ``value``.

    Used for the owner-process service demand ``O`` in the baseline model
    (the paper notes the deterministic assumption makes its results
    optimistic; the simulator supports higher-variance alternatives).
    """

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"value must be >= 0, got {self.value!r}")

    @property
    def mean(self) -> float:
        return float(self.value)

    @property
    def variance(self) -> float:
        return 0.0

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] = 1
    ) -> NDArray[np.float64]:
        return np.full(size, self.value, dtype=np.float64)


DiscreteDistribution = Binomial | Geometric | Deterministic


def pmf_mean(support: Sequence[float] | NDArray, pmf: Sequence[float] | NDArray) -> float:
    """Mean of an arbitrary discrete distribution given support and pmf."""
    support_arr = np.asarray(support, dtype=np.float64)
    pmf_arr = np.asarray(pmf, dtype=np.float64)
    if support_arr.shape != pmf_arr.shape:
        raise ValueError("support and pmf must have the same shape")
    return float(np.dot(support_arr, pmf_arr))


def pmf_variance(
    support: Sequence[float] | NDArray, pmf: Sequence[float] | NDArray
) -> float:
    """Variance of an arbitrary discrete distribution given support and pmf."""
    support_arr = np.asarray(support, dtype=np.float64)
    pmf_arr = np.asarray(pmf, dtype=np.float64)
    mean = pmf_mean(support_arr, pmf_arr)
    return float(np.dot((support_arr - mean) ** 2, pmf_arr))
