"""Performance metrics for non-dedicated distributed computing (Section 3.1).

The paper complements the classical *speedup* / *efficiency* metrics with
*weighted* variants that account for the cycles consumed by the (higher
priority) workstation-owner processes.  With job demand ``J``, expected job
completion time ``E_j``, ``W`` workstations and owner utilization ``U``:

* ``task ratio           R   = T / O``
* ``speedup              S   = J / E_j``
* ``weighted speedup     S_w = J / ((1 - U) * E_j)``
* ``efficiency           E   = S / W``
* ``weighted efficiency  E_w = S_w / W``

The weighted metrics answer "how well does the parallel job use the cycles the
owners leave idle?": on ``W`` workstations each ``U`` busy, only
``W * (1 - U)`` workstations' worth of cycles are available, so the best
achievable job time is ``J / (W * (1 - U))`` and the weighted efficiency is
the ratio of that bound to the achieved time.

Sanity anchors from the paper (Figures 1-4, ``J = 1000``, ``O = 10``,
``W = 100``): efficiency ≈ 61% at ``U = 1%`` and ≈ 32.5% at ``U = 20%``;
weighted efficiency ≈ 61.5% and ≈ 41% respectively.  These are asserted in the
test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from numpy.typing import NDArray

from .analytical import ModelEvaluation

__all__ = [
    "speedup",
    "weighted_speedup",
    "efficiency",
    "weighted_efficiency",
    "task_ratio",
    "slowdown",
    "MetricSet",
    "compute_metrics",
    "metrics_table",
]


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def speedup(job_demand: float, expected_job_time: float) -> float:
    """Classical speedup ``J / E_j`` relative to one dedicated workstation.

    The serial baseline is the job's demand itself because a single dedicated
    machine with no owner interference completes exactly ``J`` units in ``J``
    time.
    """
    _check_positive("job_demand", job_demand)
    _check_positive("expected_job_time", expected_job_time)
    return job_demand / expected_job_time


def weighted_speedup(
    job_demand: float, expected_job_time: float, utilization: float
) -> float:
    """Speedup weighted by the cycles actually available to the parallel job.

    ``S_w = J / ((1 - U) * E_j)``; equals the classical speedup when ``U = 0``.
    """
    _check_positive("job_demand", job_demand)
    _check_positive("expected_job_time", expected_job_time)
    if not 0.0 <= utilization < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {utilization!r}")
    return job_demand / ((1.0 - utilization) * expected_job_time)


def efficiency(job_demand: float, expected_job_time: float, workstations: int) -> float:
    """Efficiency ``speedup / W`` — fraction of ideal linear speedup attained."""
    if workstations < 1:
        raise ValueError(f"workstations must be >= 1, got {workstations!r}")
    return speedup(job_demand, expected_job_time) / workstations


def weighted_efficiency(
    job_demand: float,
    expected_job_time: float,
    workstations: int,
    utilization: float,
) -> float:
    """Weighted efficiency ``weighted_speedup / W``.

    This is the paper's primary feasibility metric: it measures how close the
    parallel job comes to consuming *all* cycles the owners leave idle.
    """
    if workstations < 1:
        raise ValueError(f"workstations must be >= 1, got {workstations!r}")
    return weighted_speedup(job_demand, expected_job_time, utilization) / workstations


def task_ratio(task_demand: float, owner_demand: float) -> float:
    """Task ratio ``T / O`` — parallel task demand over mean owner demand."""
    _check_positive("task_demand", task_demand)
    _check_positive("owner_demand", owner_demand)
    return task_demand / owner_demand


def slowdown(expected_job_time: float, task_demand: float) -> float:
    """Ratio of achieved job time to the interference-free time ``T``.

    A slowdown of 1.0 means owner processes caused no delay at all; the scaled
    -problem experiment (Figure 9) reports this quantity as a percentage
    increase (``slowdown - 1``).
    """
    _check_positive("expected_job_time", expected_job_time)
    _check_positive("task_demand", task_demand)
    return expected_job_time / task_demand


@dataclass(frozen=True)
class MetricSet:
    """All Section-3.1 metrics evaluated at one model point."""

    workstations: int
    utilization: float
    job_demand: float
    task_demand: float
    owner_demand: float
    expected_task_time: float
    expected_job_time: float
    task_ratio: float
    speedup: float
    weighted_speedup: float
    efficiency: float
    weighted_efficiency: float
    slowdown: float

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary form, convenient for tabular output and CSV."""
        return {
            "workstations": float(self.workstations),
            "utilization": self.utilization,
            "job_demand": self.job_demand,
            "task_demand": self.task_demand,
            "owner_demand": self.owner_demand,
            "expected_task_time": self.expected_task_time,
            "expected_job_time": self.expected_job_time,
            "task_ratio": self.task_ratio,
            "speedup": self.speedup,
            "weighted_speedup": self.weighted_speedup,
            "efficiency": self.efficiency,
            "weighted_efficiency": self.weighted_efficiency,
            "slowdown": self.slowdown,
        }


def compute_metrics(evaluation: ModelEvaluation) -> MetricSet:
    """Derive the full metric set from an analytical model evaluation."""
    return MetricSet(
        workstations=evaluation.workstations,
        utilization=evaluation.utilization,
        job_demand=evaluation.job_demand,
        task_demand=evaluation.task_demand,
        owner_demand=evaluation.owner_demand,
        expected_task_time=evaluation.expected_task_time,
        expected_job_time=evaluation.expected_job_time,
        task_ratio=task_ratio(evaluation.task_demand, evaluation.owner_demand),
        speedup=speedup(evaluation.job_demand, evaluation.expected_job_time),
        weighted_speedup=weighted_speedup(
            evaluation.job_demand,
            evaluation.expected_job_time,
            evaluation.utilization,
        ),
        efficiency=efficiency(
            evaluation.job_demand,
            evaluation.expected_job_time,
            evaluation.workstations,
        ),
        weighted_efficiency=weighted_efficiency(
            evaluation.job_demand,
            evaluation.expected_job_time,
            evaluation.workstations,
            evaluation.utilization,
        ),
        slowdown=slowdown(evaluation.expected_job_time, evaluation.task_demand),
    )


def metrics_table(evaluations: Iterable[ModelEvaluation]) -> list[MetricSet]:
    """Compute metrics for a sweep of model evaluations (one row per point)."""
    return [compute_metrics(e) for e in evaluations]


def series(metric_sets: Sequence[MetricSet], field: str) -> NDArray[np.float64]:
    """Extract one metric as a numpy array from a sweep of metric sets.

    >>> # series(rows, "weighted_efficiency") -> array of length len(rows)
    """
    if not metric_sets:
        return np.empty(0, dtype=np.float64)
    first = metric_sets[0].as_dict()
    if field not in first:
        raise KeyError(
            f"unknown metric field {field!r}; available: {sorted(first)}"
        )
    return np.array([m.as_dict()[field] for m in metric_sets], dtype=np.float64)
