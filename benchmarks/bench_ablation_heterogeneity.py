"""Ablation benchmark: heterogeneous owner load (homogeneity assumption relaxed)."""

from repro.experiments import heterogeneity_ablation
from repro.experiments.report import format_mapping


def test_ablation_heterogeneous_load(once):
    rows = once(
        heterogeneity_ablation,
        job_demand=6000.0,
        workstations=60,
        mean_utilization=0.10,
        concentration_levels=(0.0, 0.5, 1.0),
        monte_carlo_jobs=4000,
        seed=37,
    )
    print()
    for row in rows:
        print(format_mapping(row.label, row.as_dict()))
    times = [row.mean_job_time for row in rows]
    # Skewing the same average load onto fewer machines lengthens the job:
    # the busiest workstation dominates the max-order statistic.
    assert times[0] < times[1] < times[2]
    # The Monte-Carlo cross-check agrees with the analytic extension.
    for row in rows:
        analytic = row.mean_job_time
        simulated = row.parameters["monte_carlo_job_time"]
        assert abs(simulated - analytic) / analytic < 0.02
