"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one figure or quoted finding of
Leutenegger & Sun (1993) under ``pytest-benchmark`` timing.  The benchmarked
callable returns the figure's data; each benchmark then prints the regenerated
series (visible with ``pytest benchmarks/ --benchmark-only -s``) and asserts
the paper-anchored shape checks so a regression in either performance or
correctness is caught here.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import FigureResult, format_figure

#: Where the BENCH_*.json trajectories live (override with BENCH_DIR in CI).
BENCH_DIR = Path(os.environ.get("BENCH_DIR", "."))

#: Most recent entries kept per BENCH_*.json trajectory (rolling window).
HISTORY_CAP = 50


def report_figure(result: FigureResult, max_rows: int = 12) -> None:
    """Print the regenerated series of a figure (the paper's rows)."""
    print()
    print(format_figure(result, max_rows=max_rows))


def append_and_compare(
    name: str, record: dict, key: str = "speedup"
) -> dict | None:
    """Append one run's record to the ``BENCH_<name>.json`` trajectory.

    The file is a JSON list, oldest entry first; the committed tail entry is
    the baseline this run compares against (a legacy single-record file is
    treated as a one-entry trajectory).  The comparison is *informational* —
    printed next to the new measurement so a perf trend is visible in the
    bench log and in the committed file's history — while the hard speedup
    gates stay as absolute assertions in the benchmarks themselves, immune
    to a slow CI runner having produced a slow baseline.

    Trajectories are capped at the most recent :data:`HISTORY_CAP` entries —
    the files are committed, so every CI run appending forever would grow
    them without bound; the rolling window keeps the recent trend (and the
    baseline tail) while the full history stays in git.

    Returns the baseline record, or ``None`` on the first run.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    history: list[dict] = []
    if path.exists():
        loaded = json.loads(path.read_text())
        history = loaded if isinstance(loaded, list) else [loaded]
    baseline = history[-1] if history else None
    history.append(record)
    history = history[-HISTORY_CAP:]
    path.write_text(json.dumps(history, indent=2) + "\n")
    if baseline is not None and key in baseline and key in record:
        ratio = record[key] / baseline[key] if baseline[key] else float("inf")
        print(
            f"BENCH_{name}: {key} {record[key]:.2f} "
            f"(baseline {baseline[key]:.2f}, {ratio:.2f}x of baseline)"
        )
    else:
        print(f"BENCH_{name}: {key} {record.get(key, float('nan')):.2f} (no baseline)")
    return baseline


@pytest.fixture
def once(benchmark):
    """Run an expensive benchmark exactly once (no repeated rounds)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
