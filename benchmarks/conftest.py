"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one figure or quoted finding of
Leutenegger & Sun (1993) under ``pytest-benchmark`` timing.  The benchmarked
callable returns the figure's data; each benchmark then prints the regenerated
series (visible with ``pytest benchmarks/ --benchmark-only -s``) and asserts
the paper-anchored shape checks so a regression in either performance or
correctness is caught here.
"""

from __future__ import annotations

import pytest

from repro.experiments import FigureResult, format_figure


def report_figure(result: FigureResult, max_rows: int = 12) -> None:
    """Print the regenerated series of a figure (the paper's rows)."""
    print()
    print(format_figure(result, max_rows=max_rows))


@pytest.fixture
def once(benchmark):
    """Run an expensive benchmark exactly once (no repeated rounds)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
