"""Benchmark regenerating Figure 1: speedup vs number of workstations (J=1000)."""

from repro.experiments import run_fig01
from conftest import report_figure


def test_fig01_speedup(benchmark):
    result = benchmark(run_fig01)
    report_figure(result)
    # Paper anchors: 61% of optimal at U=1%, 32.5% at U=20% (W=100).
    assert abs(result.value_at("util=0.01", 100) - 61.0) < 1.5
    assert abs(result.value_at("util=0.2", 100) - 32.5) < 1.5
    # Curves ordered by utilization and below the perfect line.
    for w in (20, 60, 100):
        assert (
            result.value_at("util=0.01", w)
            > result.value_at("util=0.05", w)
            > result.value_at("util=0.1", w)
            > result.value_at("util=0.2", w)
        )
        assert result.value_at("util=0.01", w) <= w
