"""Ablation benchmark: agreement of analysis and the three simulation back-ends."""

from repro.experiments import sim_mode_agreement
from repro.experiments.report import format_mapping


def test_ablation_simulation_modes(once):
    results = once(sim_mode_agreement, num_jobs=4000, seed=17)
    print()
    print(format_mapping("E_j by back-end", results))
    analytic = results["analytic"]
    assert abs(results["monte-carlo"] - analytic) / analytic < 0.02
    assert abs(results["discrete-time"] - analytic) / analytic < 0.05
    # The event-driven simulator relaxes the optimistic assumptions and is
    # allowed to be somewhat pessimistic, but must stay in the same regime.
    assert abs(results["event-driven"] - analytic) / analytic < 0.12
