"""Benchmark of the Section-3.2 finding: scaled-problem response-time inflation."""

from repro.experiments import run_conclusions_scaled
from conftest import report_figure


def test_conclusions_scaled_inflation(benchmark):
    result = benchmark(run_conclusions_scaled)
    report_figure(result)
    xs, ys = result.get("inflation")
    inflation = dict(zip(xs.tolist(), ys.tolist()))
    # Paper: 14 / 30 / 44 / 71 % at U = 1 / 5 / 10 / 20 %.
    assert abs(inflation[0.01] - 0.14) < 0.02
    assert abs(inflation[0.05] - 0.30) < 0.02
    assert abs(inflation[0.10] - 0.44) < 0.02
    assert abs(inflation[0.20] - 0.71) < 0.02
