"""Ablation benchmark: relaxing the perfectly balanced task-split assumption."""

from repro.experiments import imbalance_ablation
from repro.experiments.report import format_mapping


def test_ablation_task_imbalance(once):
    rows = once(
        imbalance_ablation,
        task_demand=100.0,
        workstations=20,
        utilization=0.10,
        num_jobs=400,
        seed=13,
        imbalances=(0.0, 0.1, 0.25, 0.5),
    )
    print()
    for row in rows:
        print(format_mapping(row.label, row.as_dict()))
    times = [row.mean_job_time for row in rows]
    # Imbalance can only hurt the makespan; the trend must be non-decreasing
    # from perfectly balanced to heavily imbalanced.
    assert times[0] <= times[-1]
    assert times[0] >= 100.0
