"""Benchmark regenerating Figure 6: weighted efficiency for the larger job (J=10k)."""

from repro.experiments import run_fig04, run_fig06
from conftest import report_figure


def test_fig06_weighted_efficiency_large_job(benchmark):
    result = benchmark(run_fig06)
    report_figure(result)
    small = run_fig04()
    for name in result.series_names():
        assert result.value_at(name, 100) >= small.value_at(name, 100) - 1e-9
    # At J=10,000 even a 100-node system keeps high weighted efficiency for
    # light owner loads (task ratio 10 at W=100).
    assert result.value_at("util=0.01", 100) > 0.85
