"""Benchmark regenerating Figure 9: scaled-problem execution time vs workstations."""

from repro.experiments import run_fig09
from conftest import report_figure


def test_fig09_scaled_problem(benchmark):
    result = benchmark(run_fig09)
    report_figure(result)
    # Execution time grows with system size but flattens; paper quotes
    # 114 / 130 / 144 / 171 time units at W=100 for U=1/5/10/20%.
    expected = {"util=0.01": 114, "util=0.05": 130, "util=0.1": 144, "util=0.2": 171}
    for name, target in expected.items():
        assert abs(result.value_at(name, 100) - target) < 3.0
        first_jump = result.value_at(name, 10) - result.value_at(name, 1)
        last_jump = result.value_at(name, 100) - result.value_at(name, 91)
        assert first_jump > last_jump >= 0
