"""Benchmark regenerating Figure 5: weighted speedup for the larger job (J=10k)."""

from repro.experiments import run_fig03, run_fig05
from conftest import report_figure


def test_fig05_weighted_speedup_large_job(benchmark):
    result = benchmark(run_fig05)
    report_figure(result)
    small = run_fig03()
    # The 10k-unit job keeps a larger task ratio, so it dominates the 1k job.
    for name in ("util=0.05", "util=0.2"):
        for w in (20, 60, 100):
            assert result.value_at(name, w) >= small.value_at(name, w) - 1e-9
