"""Benchmark regenerating Figure 8: task-ratio sensitivity vs system size (U=0.1)."""

from repro.experiments import run_fig08
from conftest import report_figure


def test_fig08_task_ratio_system_size(benchmark):
    result = benchmark(run_fig08)
    report_figure(result)
    # Sensitivity to the task ratio increases with system size: at any fixed
    # ratio, bigger systems achieve lower weighted efficiency.
    for ratio in (5, 10, 20, 40):
        values = [
            result.value_at(f"numProc={w}", ratio) for w in (2, 4, 8, 20, 60, 100)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
