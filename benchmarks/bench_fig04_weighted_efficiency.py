"""Benchmark regenerating Figure 4: weighted efficiency vs workstations (J=1000)."""

from repro.experiments import run_fig04
from conftest import report_figure


def test_fig04_weighted_efficiency(benchmark):
    result = benchmark(run_fig04)
    report_figure(result)
    # Paper anchors at W=100: 61.5% (U=1%) and 41% (U=20%).
    assert abs(result.value_at("util=0.01", 100) - 0.615) < 0.02
    assert abs(result.value_at("util=0.2", 100) - 0.41) < 0.02
