"""Benchmark of the open-system backend: jobs completed per wall-clock second.

Runs the space-shared open-system simulator at three normalized loads and
reports its throughput in *simulated job completions per second of wall
time* — the number that bounds how large an arrival-sweep or admission-sweep
grid stays interactive.  The shape checks assert the queueing contract along
the way: heavier load means longer mean response, and every job completes.
"""

import time

from repro.cluster import SimulationConfig, run_simulation
from repro.core import JobArrivalSpec, JobClassSpec, OwnerSpec, ScenarioSpec
from repro.experiments.report import format_mapping

from conftest import append_and_compare

WORKSTATIONS = 8
TASK_DEMAND = 125.0  # J = 1000
NUM_JOBS = 400
LOADS = (0.3, 0.6, 0.85)


def _config(load: float, space_shared: bool) -> SimulationConfig:
    utilization = 0.10
    owner = OwnerSpec(demand=10.0, utilization=utilization)
    saturation = (1.0 - utilization) / TASK_DEMAND
    kwargs = {}
    if space_shared:
        kwargs = dict(
            job_classes=(
                JobClassSpec("narrow", width=2, weight=0.75),
                JobClassSpec("wide", width=WORKSTATIONS, weight=0.25, priority=1),
            ),
            admission_policy="easy-backfill",
        )
    arrivals = JobArrivalSpec.poisson(rate=load * saturation, **kwargs)
    scenario = ScenarioSpec.homogeneous(WORKSTATIONS, owner, arrivals=arrivals)
    return SimulationConfig.from_scenario(
        scenario, task_demand=TASK_DEMAND, num_jobs=NUM_JOBS,
        num_batches=10, seed=42,
    )


def test_open_system_throughput(once):
    def run_all():
        results = {}
        for load in LOADS:
            for space_shared in (False, True):
                results[(load, space_shared)] = run_simulation(
                    _config(load, space_shared), "open-system"
                )
        return results

    start = time.perf_counter()
    results = once(run_all)
    elapsed = time.perf_counter() - start

    report = {"total_seconds": elapsed}
    previous = None
    for load in LOADS:
        classless = results[(load, False)]
        shared = results[(load, True)]
        assert classless.num_jobs == NUM_JOBS
        assert shared.num_jobs == NUM_JOBS
        # Heavier load -> slower responses (queueing contract).
        if previous is not None:
            assert classless.mean_response_time > previous
        previous = classless.mean_response_time
        report[f"load={load:g}_classless_mean_R"] = classless.mean_response_time
        report[f"load={load:g}_space_shared_mean_R"] = shared.mean_response_time
    total_jobs = NUM_JOBS * len(LOADS) * 2
    report["jobs_completed_per_sec"] = total_jobs / elapsed
    print()
    print(format_mapping("open-system backend throughput", report))
    append_and_compare("admission", report, key="jobs_completed_per_sec")
