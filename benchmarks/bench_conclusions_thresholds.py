"""Benchmark of the Section-5 finding: minimum task ratios for 80% efficiency."""

from repro.experiments import run_conclusions_thresholds
from conftest import report_figure


def test_conclusions_task_ratio_thresholds(benchmark):
    result = benchmark(run_conclusions_thresholds)
    report_figure(result)
    xs, ys = result.get("min task ratio")
    thresholds = dict(zip(xs.tolist(), ys.tolist()))
    # Paper: >= 8 at 5%, >= 13 at 10%, >= 20 at 20% (figure-reading accuracy).
    assert abs(thresholds[0.05] - 8) <= 1
    assert abs(thresholds[0.10] - 13) <= 2
    assert abs(thresholds[0.20] - 20) <= 3
    assert thresholds[0.05] < thresholds[0.10] < thresholds[0.20]
