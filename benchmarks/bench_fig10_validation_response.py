"""Benchmark regenerating Figure 10: experimental validation of response times.

The "measurement" runs the paper's local-computation program on the simulated
PVM substrate (owner utilization calibrated to the paper's 3%) and compares
against the analytic prediction, problem sizes 1-16 minutes, 1-12 workstations.
"""

import os

import numpy as np

from repro.experiments import run_fig10
from repro.workload import ValidationGrid
from conftest import report_figure

GRID = ValidationGrid(replications=10)


def test_fig10_validation_response(once):
    # The grid's 350 independent PVM runs fan out over the sweep engine.
    result = once(run_fig10, grid=GRID, seed=1993, jobs=min(4, os.cpu_count() or 1))
    report_figure(result)
    for minutes in (1, 2, 4, 8, 16):
        xs, measured = result.get(f"measured {minutes:g}")
        _, analytic = result.get(f"analytic {minutes:g}")
        rel = np.abs(measured - analytic) / analytic
        # Close agreement between model and measurement (paper's conclusion).
        # The 1-minute problem has tiny per-task demands at 10-12 nodes, so a
        # single owner burst moves a point noticeably; judge the mean error.
        assert float(rel.mean()) < 0.20
        assert float(rel[:4].mean()) < 0.10
        # Response time decreases as workstations are added.
        assert measured[0] > measured[-1]
    # Larger problems take proportionally longer at every system size.
    _, small = result.get("measured 1")
    _, large = result.get("measured 16")
    assert np.all(large > small * 8)
