"""Ablation benchmark: owner-demand variance (the paper's future-work question)."""

from repro.experiments import owner_variance_ablation
from repro.experiments.report import format_mapping


def test_ablation_owner_variance(once):
    rows = once(
        owner_variance_ablation,
        task_demand=100.0,
        workstations=20,
        utilization=0.10,
        num_jobs=600,
        seed=11,
    )
    print()
    for row in rows:
        print(format_mapping(row.label, row.as_dict()))
    by_label = {row.label: row for row in rows}
    deterministic = by_label["owner-demand=deterministic"].mean_job_time
    hyper = by_label["owner-demand=hyperexponential"].mean_job_time
    # Higher owner-demand variance degrades (or at best matches) job time,
    # confirming the paper's claim that its deterministic results are optimistic.
    assert hyper >= deterministic * 0.98
    assert all(row.mean_job_time >= 100.0 for row in rows)
