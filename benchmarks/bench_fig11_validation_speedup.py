"""Benchmark regenerating Figure 11: experimental validation of speedups."""

import os

import numpy as np

from repro.experiments import run_fig11
from repro.workload import ValidationGrid
from conftest import report_figure

GRID = ValidationGrid(replications=10)


def test_fig11_validation_speedup(once):
    # The grid's 350 independent PVM runs fan out over the sweep engine.
    result = once(run_fig11, grid=GRID, seed=1993, jobs=min(4, os.cpu_count() or 1))
    report_figure(result)
    # Speedups grow with the number of workstations for every problem size,
    # stay near-linear at the measured 3% utilization, and the larger job
    # demands achieve at least the speedup of the smallest demand at W=12
    # (the task-ratio effect the paper highlights at 8 and 12 workstations).
    for minutes in (1, 2, 4, 8, 16):
        xs, ys = result.get(f"demand = {minutes:g}")
        assert ys[0] == 1.0
        assert ys[-1] > 6.0
        assert np.all(ys <= xs * 1.3)
    small_at_12 = result.value_at("demand = 1", 12)
    large_at_12 = result.value_at("demand = 16", 12)
    assert large_at_12 >= small_at_12 * 0.85
