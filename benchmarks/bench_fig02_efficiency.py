"""Benchmark regenerating Figure 2: efficiency vs number of workstations (J=1000)."""

from repro.experiments import run_fig02
from conftest import report_figure


def test_fig02_efficiency(benchmark):
    result = benchmark(run_fig02)
    report_figure(result)
    # On one node the efficiency is 1 / (1 + O*P) = roughly 1 - U, and it
    # decays as workstations are added.
    for name in result.series_names():
        utilization = float(name.split("=")[1])
        assert result.value_at(name, 1) >= (1.0 - utilization) - 0.02
        assert result.value_at(name, 100) < result.value_at(name, 10)
    assert abs(result.value_at("util=0.01", 100) - 0.61) < 0.02
