"""Micro-benchmarks of the substrates: analytic kernel, DES kernel, MC sampler.

Not a paper figure — these catch performance regressions in the hot paths the
figure benchmarks depend on.
"""

import numpy as np

from repro.backends import get_backend
from repro.cluster import SimulationConfig
from repro.core import OwnerSpec, expected_job_time
from repro.desim import Environment, PreemptiveResource, Interrupt


def test_analytic_job_time_kernel(benchmark):
    value = benchmark(expected_job_time, 1000, 100, 10.0, 0.0111)
    assert 1000 < value < 1000 + 1000 * 10


def test_monte_carlo_sampler_throughput(benchmark):
    config = SimulationConfig(
        workstations=100,
        task_demand=100,
        owner=OwnerSpec(demand=10.0, utilization=0.1),
        num_jobs=20_000,
        seed=0,
    )

    sampler = get_backend("monte-carlo")
    result = benchmark(lambda: sampler(config).run())
    assert result.num_jobs == 20_000


def test_des_kernel_event_throughput(benchmark):
    def run_kernel():
        env = Environment()
        cpu = PreemptiveResource(env, capacity=1)

        def task(env):
            remaining = 1000.0
            while remaining > 0:
                with cpu.request(priority=1) as req:
                    yield req
                    start = env.now
                    try:
                        yield env.timeout(remaining)
                        remaining = 0
                    except Interrupt:  # simlint: ignore[SL003] - preempt-resume kernel
                        remaining -= env.now - start

        def owner(env):
            for _ in range(200):
                yield env.timeout(7.0)
                with cpu.request(priority=0) as req:
                    yield req
                    yield env.timeout(3.0)

        env.process(task(env))
        env.process(owner(env))
        env.run()
        return env.now

    final_time = benchmark(run_kernel)
    assert final_time > 1000.0
