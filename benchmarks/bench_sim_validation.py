"""Benchmark of the Section-2.2 simulation-vs-analysis validation.

Duplicates the Figure-1 experiment in simulation with the paper's output
analysis (20 batches x 1000 samples, 90% confidence) and checks the two are
statistically indistinguishable.  The 32-point grid is executed through the
sweep engine (``jobs`` worker processes; per-point seeds make the results
independent of the worker count).
"""

import os

from repro.experiments import agreement_summary, run_simulation_validation
from repro.experiments.report import format_mapping


def test_sim_validation_matches_analysis(once):
    points = once(
        run_simulation_validation,
        workstation_counts=(1, 5, 10, 20, 40, 60, 80, 100),
        utilizations=(0.01, 0.05, 0.10, 0.20),
        num_jobs=20_000,
        jobs=min(4, os.cpu_count() or 1),
    )
    summary = agreement_summary(points)
    print()
    print(format_mapping("simulation vs analysis", summary))
    assert summary["points"] == 32
    assert summary["max_abs_relative_error"] < 0.01
    assert summary["fraction_within_ci"] > 0.6
