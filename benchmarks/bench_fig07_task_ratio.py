"""Benchmark regenerating Figure 7: weighted efficiency vs task ratio (W=60)."""

from repro.experiments import run_fig07
from conftest import report_figure


def test_fig07_task_ratio(benchmark):
    result = benchmark(run_fig07)
    report_figure(result)
    # 80% weighted efficiency crossings: ~8 at U=5%, ~13 at U=10%, ~20 at U=20%.
    assert result.value_at("util=0.05", 8) >= 0.80
    assert result.value_at("util=0.1", 13) >= 0.80
    assert result.value_at("util=0.1", 10) <= 0.82
    assert result.value_at("util=0.2", 20) >= 0.80
    assert result.value_at("util=0.2", 14) <= 0.82
