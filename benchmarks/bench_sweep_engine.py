"""Benchmark of the sweep-execution engine: serial vs parallel vs cached replay.

Runs one fig01-style grid three ways — in-process serial, fanned out over a
process pool, and replayed from the on-disk cache — recording the wall time of
each and asserting the engine's contract: all three paths return bitwise
identical job-time samples, and the cached replay performs zero simulations.
The parallel-speedup assertion only applies when the machine actually has a
second CPU to use.

A second case races the *vectorized* path on a heterogeneous concentration
grid against the scalar per-config path, asserting the >= 3x speedup the
group-max batched sampler delivers plus statistical agreement within the
batch-means CI, appending to the ``BENCH_sweep.json`` trajectory (committed
baseline + CI artifact) so the speedup is tracked across commits.

A third case races the array *event kernel* against the generator oracles on
the three event-driven grids — ``policy-compare`` (closed, every scheduling
policy), ``arrival-sweep`` (open Poisson streams) and ``admission-sweep``
(space-shared job classes under every admission policy) — asserting bitwise
identity on every point plus each grid's throughput gate, and appending to
the ``BENCH_kernel.json`` trajectory.
"""

import os
import time

import numpy as np

from conftest import append_and_compare
from repro.backends import get_backend
from repro.engine import SweepRunner, build_grid
from repro.experiments.report import format_mapping

#: A fig01-style grid heavy enough that per-point work dominates dispatch.
GRID_KWARGS = dict(
    num_jobs=20_000,
    workstation_counts=(10, 20, 40, 60, 80, 100),
    utilizations=(0.05, 0.10),
)


def _timed(runner: SweepRunner, grid) -> tuple[float, object]:
    start = time.perf_counter()
    outcome = runner.run(grid)
    return time.perf_counter() - start, outcome


def test_sweep_engine_serial_vs_parallel(once, tmp_path):
    grid = build_grid("fig01", **GRID_KWARGS)

    serial_time, serial = _timed(SweepRunner(jobs=1), grid)
    parallel = once(SweepRunner(jobs=2).run, grid)

    # Bitwise-identical results regardless of worker count.
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.job_times, b.job_times)
        assert np.array_equal(a.task_times, b.task_times)

    cache_runner = SweepRunner(jobs=1, cache=tmp_path / "cache")
    warm_time, warm = _timed(cache_runner, grid)
    replay_time, replay = _timed(cache_runner, grid)

    # A cached re-run performs zero simulations and replays identical samples.
    assert warm.simulated == len(grid) and warm.cache_hits == 0
    assert replay.simulated == 0 and replay.cache_hits == len(grid)
    for a, b in zip(serial, replay):
        assert np.array_equal(a.job_times, b.job_times)

    print()
    print(
        format_mapping(
            f"sweep engine, {len(grid)} points x {GRID_KWARGS['num_jobs']} jobs",
            {
                "serial_seconds": serial_time,
                "parallel_2_workers_seconds": parallel.elapsed_seconds,
                "cache_warm_seconds": warm_time,
                "cache_replay_seconds": replay_time,
                "cpus": float(os.cpu_count() or 1),
            },
        )
    )

    # Replay must beat simulating, and on a real multi-core machine two
    # workers must beat one (a single-CPU container can only interleave).
    assert replay_time < serial_time
    if (os.cpu_count() or 1) >= 2:
        assert parallel.elapsed_seconds < serial_time


#: A heterogeneous concentration grid: 3 shared-shape groups of 6 configs,
#: per-station owner-probability rows varying within each group.
HETERO_KWARGS = dict(
    num_jobs=20_000,
    workstation_counts=(8, 16, 32),
    utilizations=(0.05, 0.10),
    concentration_levels=(0.0, 0.5, 1.0),
)

def test_sweep_engine_vectorized_heterogeneous(once):
    """Vectorized heterogeneous sweep: >= 3x over scalar, CI-level agreement."""
    grid = build_grid("hetero-concentration", **HETERO_KWARGS)

    scalar_time, scalar = _timed(SweepRunner(jobs=1), grid)
    fast = once(SweepRunner(jobs=1).run_vectorized, grid)

    # The whole grid batches: one group per (W, T) cell, nothing degrades.
    assert len(fast) == len(grid)
    assert fast.vectorized_groups == 3
    assert fast.fallback_points == 0

    # Statistical agreement: scalar and batched means within the summed CI.
    for a, b in zip(scalar, fast):
        tolerance = (
            a.job_time_interval.half_width + b.job_time_interval.half_width
        )
        assert abs(a.mean_job_time - b.mean_job_time) <= tolerance

    speedup = scalar_time / fast.elapsed_seconds
    record = {
        "grid": "hetero-concentration",
        "points": len(grid),
        "num_jobs": HETERO_KWARGS["num_jobs"],
        "scalar_seconds": scalar_time,
        "vectorized_seconds": fast.elapsed_seconds,
        "speedup": speedup,
        "vectorized_groups": fast.vectorized_groups,
        "fallback_points": fast.fallback_points,
        "cpus": float(os.cpu_count() or 1),
    }
    print()
    print(format_mapping(f"vectorized heterogeneous sweep, {len(grid)} points", record))
    append_and_compare("sweep", record, key="speedup")

    # The acceptance bar: the batched path must beat scalar by >= 3x.
    assert speedup >= 3.0, f"vectorized speedup {speedup:.2f}x below the 3x bar"


#: The event-driven grids the kernel must beat the oracle on, with the
#: scalar mode each one pins against and that grid's speedup gate (shrunk
#: from the figure defaults so the oracle side stays a few seconds per
#: grid).  The admission grid gates at 4x: its oracle spends part of its
#: time inside the admission controller's plain-Python decision loop, which
#: the kernel reproduces op-for-op rather than amortises.
KERNEL_GRIDS = (
    ("policy-compare", "event-driven", 5.0),
    ("arrival-sweep", "open-system", 5.0),
    ("admission-sweep", "open-system", 4.0),
)
KERNEL_NUM_JOBS = 120


def _bitwise_equal(oracle_result, kernel_result) -> bool:
    if hasattr(oracle_result, "arrival_times"):
        return (
            np.array_equal(oracle_result.arrival_times, kernel_result.arrival_times)
            and np.array_equal(oracle_result.start_times, kernel_result.start_times)
            and np.array_equal(oracle_result.end_times, kernel_result.end_times)
            and np.array_equal(oracle_result.demands, kernel_result.demands)
            # Space-shared bookkeeping (the job_* properties fold the
            # classless defaults, so the same check covers every stream).
            and np.array_equal(oracle_result.job_widths, kernel_result.job_widths)
            and np.array_equal(
                oracle_result.job_class_ids, kernel_result.job_class_ids
            )
            and np.array_equal(oracle_result.job_restarts, kernel_result.job_restarts)
        )
    return (
        np.array_equal(oracle_result.job_times, kernel_result.job_times)
        and np.array_equal(oracle_result.task_times, kernel_result.task_times)
    )


def test_event_kernel_vs_oracle(once):
    """Array kernel: bitwise-identical to the oracles at each grid's gate."""

    def race_all():
        sections = {}
        for grid_name, oracle_mode, gate in KERNEL_GRIDS:
            grid = build_grid(grid_name, num_jobs=KERNEL_NUM_JOBS)
            start = time.perf_counter()
            oracle = SweepRunner(jobs=1).run(grid, mode=oracle_mode)
            oracle_seconds = time.perf_counter() - start
            start = time.perf_counter()
            kernel = get_backend("event-kernel").run_batch(grid)
            kernel_seconds = time.perf_counter() - start
            for a, b in zip(oracle, kernel):
                assert _bitwise_equal(a, b), (
                    f"kernel diverged from the {oracle_mode} oracle on "
                    f"{grid_name}: {a.config!r}"
                )
            sections[grid_name.replace("-", "_")] = {
                "points": len(grid),
                "num_jobs": KERNEL_NUM_JOBS,
                "oracle_mode": oracle_mode,
                "oracle_seconds": oracle_seconds,
                "kernel_seconds": kernel_seconds,
                "speedup": oracle_seconds / kernel_seconds,
                "gate": gate,
            }
        return sections

    sections = once(race_all)
    record = {
        **sections,
        "speedup": min(s["speedup"] for s in sections.values()),
        "cpus": float(os.cpu_count() or 1),
    }

    print()
    for name, section in sections.items():
        print(format_mapping(f"event kernel vs oracle, {name}", section))
    append_and_compare("kernel", record, key="speedup")

    # The acceptance bar: every grid clears its own gate, not the average.
    for name, section in sections.items():
        assert section["speedup"] >= section["gate"], (
            f"kernel speedup on {name} is {section['speedup']:.2f}x, "
            f"below the {section['gate']:.0f}x bar"
        )
