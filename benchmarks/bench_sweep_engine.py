"""Benchmark of the sweep-execution engine: serial vs parallel vs cached replay.

Runs one fig01-style grid three ways — in-process serial, fanned out over a
process pool, and replayed from the on-disk cache — recording the wall time of
each and asserting the engine's contract: all three paths return bitwise
identical job-time samples, and the cached replay performs zero simulations.
The parallel-speedup assertion only applies when the machine actually has a
second CPU to use.
"""

import os
import time

import numpy as np

from repro.engine import SweepRunner, build_grid
from repro.experiments.report import format_mapping

#: A fig01-style grid heavy enough that per-point work dominates dispatch.
GRID_KWARGS = dict(
    num_jobs=20_000,
    workstation_counts=(10, 20, 40, 60, 80, 100),
    utilizations=(0.05, 0.10),
)


def _timed(runner: SweepRunner, grid) -> tuple[float, object]:
    start = time.perf_counter()
    outcome = runner.run(grid)
    return time.perf_counter() - start, outcome


def test_sweep_engine_serial_vs_parallel(once, tmp_path):
    grid = build_grid("fig01", **GRID_KWARGS)

    serial_time, serial = _timed(SweepRunner(jobs=1), grid)
    parallel = once(SweepRunner(jobs=2).run, grid)

    # Bitwise-identical results regardless of worker count.
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.job_times, b.job_times)
        assert np.array_equal(a.task_times, b.task_times)

    cache_runner = SweepRunner(jobs=1, cache=tmp_path / "cache")
    warm_time, warm = _timed(cache_runner, grid)
    replay_time, replay = _timed(cache_runner, grid)

    # A cached re-run performs zero simulations and replays identical samples.
    assert warm.simulated == len(grid) and warm.cache_hits == 0
    assert replay.simulated == 0 and replay.cache_hits == len(grid)
    for a, b in zip(serial, replay):
        assert np.array_equal(a.job_times, b.job_times)

    print()
    print(
        format_mapping(
            f"sweep engine, {len(grid)} points x {GRID_KWARGS['num_jobs']} jobs",
            {
                "serial_seconds": serial_time,
                "parallel_2_workers_seconds": parallel.elapsed_seconds,
                "cache_warm_seconds": warm_time,
                "cache_replay_seconds": replay_time,
                "cpus": float(os.cpu_count() or 1),
            },
        )
    )

    # Replay must beat simulating, and on a real multi-core machine two
    # workers must beat one (a single-CPU container can only interleave).
    assert replay_time < serial_time
    if (os.cpu_count() or 1) >= 2:
        assert parallel.elapsed_seconds < serial_time
