"""Ablation benchmark: static partitioning vs dynamic self-scheduling (PVM)."""

from repro.experiments import scheduling_ablation
from repro.experiments.report import format_mapping


def test_ablation_scheduling(once):
    result = once(
        scheduling_ablation,
        job_demand=2400.0,
        workstations=8,
        utilization=0.20,
        chunks_per_worker=8,
        replications=5,
        seed=29,
    )
    print()
    print(format_mapping("static vs self-scheduling", result))
    assert result["static_mean_makespan"] >= 2400.0 / 8
    assert result["dynamic_mean_makespan"] >= 2400.0 / 8
    # Dynamic chunking must not be dramatically worse than the static split.
    assert result["improvement"] > -0.2
