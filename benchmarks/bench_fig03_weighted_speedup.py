"""Benchmark regenerating Figure 3: weighted speedup vs workstations (J=1000)."""

from repro.experiments import run_fig01, run_fig03
from conftest import report_figure


def test_fig03_weighted_speedup(benchmark):
    result = benchmark(run_fig03)
    report_figure(result)
    plain = run_fig01()
    # Weighted speedup discounts owner-held cycles, so it dominates speedup.
    for name in ("util=0.05", "util=0.2"):
        for w in (20, 60, 100):
            assert result.value_at(name, w) >= plain.value_at(name, w) - 1e-9
    assert result.value_at("util=0.2", 100) < 100
