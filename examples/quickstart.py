"""Quickstart: is my parallel job worth running on a non-dedicated cluster?

This walks through the library's core workflow in a few lines:

1. describe the parallel job (its total demand) and the cluster (size plus
   owner behaviour),
2. evaluate the analytical model of Leutenegger & Sun (1993),
3. read off the non-dedicated metrics (task ratio, weighted efficiency), and
4. ask the feasibility API for a verdict and for the minimum job size that
   would make the cluster worthwhile.

Run with:  python examples/quickstart.py
"""

from repro import (
    JobSpec,
    OwnerSpec,
    SystemSpec,
    assess_feasibility,
    compute_metrics,
    evaluate,
    minimum_task_ratio,
)
from repro.core import TaskRounding


def main() -> None:
    # A parallel job needing 12,000 time units of CPU in total (perfectly
    # parallel, as the paper assumes), on 20 workstations whose owners use
    # them 10% of the time in bursts averaging 10 units.
    job = JobSpec(total_demand=12_000, rounding=TaskRounding.INTERPOLATE)
    owner = OwnerSpec(demand=10, utilization=0.10)
    system = SystemSpec(workstations=20, owner=owner)

    evaluation = evaluate(job, system)
    metrics = compute_metrics(evaluation)

    print("== model evaluation ==")
    print(f"per-task demand T        : {evaluation.task_demand:.1f} units")
    print(f"task ratio T/O           : {metrics.task_ratio:.1f}")
    print(f"expected task time E_t   : {evaluation.expected_task_time:.1f} units")
    print(f"expected job time  E_j   : {evaluation.expected_job_time:.1f} units")
    print(f"speedup                  : {metrics.speedup:.2f} on {system.workstations} nodes")
    print(f"efficiency               : {metrics.efficiency:.1%}")
    print(f"weighted efficiency      : {metrics.weighted_efficiency:.1%}")
    print()

    report = assess_feasibility(job, system, target_weighted_efficiency=0.80)
    print("== feasibility ==")
    print(report.summary())
    print()

    needed_ratio = minimum_task_ratio(system.workstations, owner, 0.80)
    needed_job = needed_ratio * owner.demand * system.workstations
    print(
        f"To reach 80% weighted efficiency on this cluster the task ratio must be "
        f">= {needed_ratio:.0f}, i.e. a total job demand of >= {needed_job:,.0f} units."
    )


if __name__ == "__main__":
    main()
