"""Open-system showcase: a stream of parallel jobs on a non-dedicated cluster.

The paper's feasibility analysis runs one parallel job at a time (a *closed*
system).  This example opens the system with the JobArrivalSpec layer:

1. ramp a Poisson job stream from a lightly to a heavily loaded cluster and
   watch the mean response time inflate far beyond the standalone job time as
   the admission queue builds — the contention cost closed-system speedup
   figures cannot show;
2. sanity-check the queueing machinery against textbook M/M/1: one station,
   no owner, exponential job demands;
3. replay a measured owner-activity trace as job-arrival epochs
   (trace-driven interarrivals).

Run with:  python examples/open_system_stream.py
"""

from repro.cluster import SimulationConfig, run_simulation
from repro.core import JobArrivalSpec, OwnerSpec, ScenarioSpec
from repro.desim import StreamRegistry
from repro.workload import generate_trace, trivial_usage_behavior

WORKSTATIONS = 8
JOB_DEMAND = 800.0
UTILIZATION = 0.10
NUM_JOBS = 600


def arrival_ramp() -> None:
    task_demand = JOB_DEMAND / WORKSTATIONS
    owner = OwnerSpec(demand=10.0, utilization=UTILIZATION)
    # Saturation throughput of the cluster: one balanced job needs ~T/(1-U).
    saturation = (1.0 - UTILIZATION) / task_demand
    standalone = None
    print(f"== Poisson arrival ramp (W={WORKSTATIONS}, U={UTILIZATION:.0%}) ==")
    print(f"{'load':>5} {'mean R':>9} {'p95 R':>9} {'slowdown':>9} {'util':>6}")
    for load in (0.2, 0.5, 0.8):
        arrivals = JobArrivalSpec.poisson(rate=load * saturation)
        scenario = ScenarioSpec.homogeneous(WORKSTATIONS, owner, arrivals=arrivals)
        config = SimulationConfig.from_scenario(
            scenario, task_demand=task_demand, num_jobs=NUM_JOBS,
            num_batches=10, seed=42,
        )
        result = run_simulation(config, "open-system")
        if standalone is None:
            standalone = result.service_times.mean()
        print(
            f"{load:>5.1f} {result.mean_response_time:>9.1f} "
            f"{result.p95_response_time:>9.1f} {result.mean_slowdown:>9.2f} "
            f"{result.parallel_utilization:>6.1%}"
        )
    print(
        f"Reading: a standalone job takes ~{standalone:.0f} units; at 80% load\n"
        "the same job's *response* time is dominated by queueing delay.\n"
    )


def mm1_sanity_check() -> None:
    service_mean = 100.0
    rate = 0.005  # rho = 0.5 -> analytic E[R] = S / (1 - rho) = 200
    rho = rate * service_mean
    analytic = service_mean / (1.0 - rho)
    scenario = ScenarioSpec.homogeneous(
        1,
        OwnerSpec.idle(),
        arrivals=JobArrivalSpec.poisson(rate=rate, demand_kind="exponential"),
    )
    config = SimulationConfig.from_scenario(
        scenario, task_demand=service_mean, num_jobs=4000, seed=11
    )
    result = run_simulation(config, "open-system")
    interval = result.response_time_interval
    print("== M/M/1 sanity check (1 station, no owner, exponential demand) ==")
    print(
        f"rho={rho:.2f}: simulated E[R]={result.mean_response_time:.1f} "
        f"± {interval.half_width:.1f}, analytic {analytic:.1f}\n"
    )


def trace_driven_stream() -> None:
    behavior = trivial_usage_behavior(0.03)
    rng = StreamRegistry(5).stream("trace")
    trace = generate_trace(behavior, horizon=200_000.0, rng=rng)
    arrivals = JobArrivalSpec.from_trace(trace.to_interarrivals())
    owner = OwnerSpec(demand=10.0, utilization=UTILIZATION)
    scenario = ScenarioSpec.homogeneous(WORKSTATIONS, owner, arrivals=arrivals)
    config = SimulationConfig.from_scenario(
        scenario, task_demand=JOB_DEMAND / WORKSTATIONS, num_jobs=400,
        num_batches=10, seed=17,
    )
    result = run_simulation(config, "open-system")
    print("== trace-driven arrivals (owner-activity epochs replayed as jobs) ==")
    print(
        f"{trace.num_bursts} recorded bursts -> lambda={arrivals.mean_rate:.5f}: "
        f"mean R={result.mean_response_time:.1f}, "
        f"throughput={result.throughput:.5f}"
    )


if __name__ == "__main__":
    arrival_ramp()
    mm1_sanity_check()
    trace_driven_stream()
