"""Scaled workloads: why memory-bounded problems love idle workstations.

Reproduces the paper's Section-3.2 comparison between fixed-size jobs (whose
task ratio shrinks as workstations are added) and memory-bounded scaled jobs
(constant per-node demand), and prints the response-time inflation table the
paper quotes (14/30/44/71% at 100 workstations).

Run with:  python examples/scaled_workloads.py
"""

from repro.core import (
    OwnerSpec,
    fixed_vs_scaled_comparison,
    response_time_inflation,
    scaled_speedup,
)

PER_NODE_DEMAND = 100.0
FIXED_JOB_DEMAND = 1000.0
OWNER_DEMAND = 10.0
UTILIZATIONS = (0.01, 0.05, 0.10, 0.20)
SYSTEM_SIZES = (1, 10, 25, 50, 100)


def inflation_table() -> None:
    print("Scaled-problem response-time increase vs a dedicated node (J = 100*W)")
    print("workstations " + "".join(f"   U={u:<5g}" for u in UTILIZATIONS))
    for workstations in SYSTEM_SIZES:
        cells = []
        for utilization in UTILIZATIONS:
            owner = OwnerSpec(demand=OWNER_DEMAND, utilization=utilization)
            inflation = response_time_inflation(PER_NODE_DEMAND, workstations, owner)
            cells.append(f"  {inflation:>7.1%}")
        print(f"{workstations:>12} " + "".join(cells))
    print()


def scaled_speedups() -> None:
    print("Scaled (memory-bounded) speedup at 100 workstations")
    for utilization in UTILIZATIONS:
        owner = OwnerSpec(demand=OWNER_DEMAND, utilization=utilization)
        print(f"  U={utilization:>4.0%}: {scaled_speedup(PER_NODE_DEMAND, 100, owner):6.1f} / 100")
    print()


def fixed_vs_scaled() -> None:
    owner = OwnerSpec(demand=OWNER_DEMAND, utilization=0.10)
    rows = fixed_vs_scaled_comparison(
        FIXED_JOB_DEMAND, PER_NODE_DEMAND, SYSTEM_SIZES, owner
    )
    print("Fixed-size (J=1000) vs scaled (J=100*W) at 10% owner utilization")
    print(f"{'W':>4}  {'fixed ratio':>11}  {'fixed w-eff':>11}  {'scaled ratio':>12}  {'scaled inflation':>16}")
    for row in rows:
        print(
            f"{row.workstations:>4}  {row.fixed_task_ratio:>11.1f}  "
            f"{row.fixed_weighted_efficiency:>11.1%}  {row.scaled_task_ratio:>12.1f}  "
            f"{row.scaled_inflation:>16.1%}"
        )
    print()
    print(
        "The fixed-size job's task ratio collapses as nodes are added, dragging\n"
        "weighted efficiency down; the scaled job keeps its ratio (and tolerates\n"
        "owner interference) at any system size."
    )


def main() -> None:
    inflation_table()
    scaled_speedups()
    fixed_vs_scaled()


if __name__ == "__main__":
    main()
