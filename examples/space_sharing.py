"""Space-sharing showcase: moldable job widths under admission policies.

PR 3 opened the system to a stream of whole-cluster jobs behind one FCFS
counter.  This example exercises the admission subsystem on top of it:

1. mix narrow (width-2) and full-width moldable jobs on one 8-station
   cluster and race the admission policies — FCFS head-of-line blocking,
   EASY-style backfilling, priority, and preemptive priority (kill-and-
   requeue) — comparing overall and per-class response times;
2. drive the same cluster from a *closed-loop* source: a fixed population of
   think-submit-wait users, the interactive model of queueing theory, whose
   throughput saturates as the population grows.

Run with:  python examples/space_sharing.py
"""

from repro.cluster import SimulationConfig, run_simulation
from repro.core import JobArrivalSpec, JobClassSpec, OwnerSpec, ScenarioSpec

WORKSTATIONS = 8
JOB_DEMAND = 800.0
UTILIZATION = 0.10
NUM_JOBS = 400


def admission_policy_race() -> None:
    task_demand = JOB_DEMAND / WORKSTATIONS
    owner = OwnerSpec(demand=10.0, utilization=UTILIZATION)
    saturation = (1.0 - UTILIZATION) / task_demand
    classes = (
        JobClassSpec("narrow", width=2, weight=0.75, priority=0),
        JobClassSpec("wide", width=WORKSTATIONS, weight=0.25, priority=1),
    )
    print(
        f"== admission-policy race (W={WORKSTATIONS}, 75% width-2 / "
        f"25% width-{WORKSTATIONS} jobs, 60% load) =="
    )
    print(
        f"{'policy':>20} {'mean R':>9} {'p99 R':>9} "
        f"{'narrow R':>9} {'wide R':>9} {'evict':>6}"
    )
    for name, policy, kwargs in (
        ("fcfs", "fcfs", None),
        ("easy-backfill", "easy-backfill", None),
        ("priority", "priority", None),
        ("priority+preempt", "priority", {"preemptive": 1.0}),
    ):
        arrivals = JobArrivalSpec.poisson(
            rate=0.6 * saturation,
            job_classes=classes,
            admission_policy=policy,
            admission_kwargs=kwargs or (),
        )
        scenario = ScenarioSpec.homogeneous(
            WORKSTATIONS, owner, arrivals=arrivals
        )
        config = SimulationConfig.from_scenario(
            scenario, task_demand=task_demand, num_jobs=NUM_JOBS,
            num_batches=10, seed=42,
        )
        result = run_simulation(config, "open-system")
        per_class = result.class_metrics()
        print(
            f"{name:>20} {result.mean_response_time:>9.1f} "
            f"{result.p99_response_time:>9.1f} "
            f"{per_class['narrow']['mean_response_time']:>9.1f} "
            f"{per_class['wide']['mean_response_time']:>9.1f} "
            f"{result.total_admission_preemptions:>6.0f}"
        )
    print(
        "Reading: backfilling slides narrow jobs into stations a blocked\n"
        "full-width job cannot use; preemptive priority buys the wide class\n"
        "fast responses by evicting (and restarting) narrow jobs.\n"
    )


def closed_loop_saturation() -> None:
    task_demand = JOB_DEMAND / WORKSTATIONS
    owner = OwnerSpec(demand=10.0, utilization=UTILIZATION)
    print("== closed-loop sources (think 1000, width 4, growing population) ==")
    print(f"{'users':>6} {'mean R':>9} {'throughput':>11} {'util':>6}")
    for population in (1, 4, 8, 16):
        arrivals = JobArrivalSpec.closed_loop(
            (
                JobClassSpec.closed(
                    "users", width=4, population=population, think_time=1000.0
                ),
            )
        )
        scenario = ScenarioSpec.homogeneous(
            WORKSTATIONS, owner, arrivals=arrivals
        )
        config = SimulationConfig.from_scenario(
            scenario, task_demand=task_demand, num_jobs=240,
            num_batches=10, seed=7,
        )
        result = run_simulation(config, "open-system")
        print(
            f"{population:>6} {result.mean_response_time:>9.1f} "
            f"{result.throughput:>11.5f} {result.parallel_utilization:>6.1%}"
        )
    print(
        "Reading: two width-4 jobs fit side by side, so throughput scales\n"
        "with the population until the pair of slots saturates (around\n"
        "2*(think+R)/R ~ 10 users); past the knee extra users only queue —\n"
        "response time climbs while throughput flattens."
    )


if __name__ == "__main__":
    admission_policy_race()
    closed_loop_saturation()
