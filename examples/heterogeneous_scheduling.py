"""Scenario showcase: heterogeneous owners and scheduling policies.

The paper assumes every workstation is equally loaded and every task stays
where it was placed.  This example relaxes both assumptions with the
ScenarioSpec layer:

1. concentrate a fixed cluster-average owner load on fewer machines and watch
   the expected job time degrade (the busiest machine dominates the max),
   cross-checking the Monte-Carlo backend against the product-CDF closed form;
2. race the three scheduling policies (static / self-scheduling /
   migrate-on-owner-arrival) on the same skewed cluster and see how work
   redistribution claws back the loss.

Run with:  python examples/heterogeneous_scheduling.py
"""

from repro.cluster import POLICY_NAMES, SimulationConfig, run_simulation
from repro.core import (
    HeterogeneousSystem,
    ScenarioSpec,
    concentrated_utilizations,
    expected_job_time_heterogeneous,
)

WORKSTATIONS = 12
JOB_DEMAND = 2400.0
MEAN_UTILIZATION = 0.10
OWNER_DEMAND = 10.0
NUM_JOBS = 2000


def concentration_study() -> ScenarioSpec:
    task_demand = JOB_DEMAND / WORKSTATIONS
    print(f"== load concentration (W={WORKSTATIONS}, mean U={MEAN_UTILIZATION:.0%}) ==")
    print(f"{'level':>6} {'U_max':>6} {'analytic E_j':>13} {'simulated E_j':>14}")
    most_skewed = None
    for level in (0.0, 0.5, 1.0):
        utilizations = concentrated_utilizations(
            WORKSTATIONS, MEAN_UTILIZATION, level
        )
        scenario = ScenarioSpec.from_utilizations(utilizations, OWNER_DEMAND)
        analytic = expected_job_time_heterogeneous(
            int(task_demand), HeterogeneousSystem.from_scenario(scenario)
        )
        config = SimulationConfig.from_scenario(
            scenario, task_demand=task_demand, num_jobs=NUM_JOBS, seed=7
        )
        simulated = run_simulation(config, "monte-carlo").mean_job_time
        print(
            f"{level:>6.2f} {scenario.max_utilization:>6.0%} "
            f"{analytic:>13.2f} {simulated:>14.2f}"
        )
        most_skewed = scenario
    print(
        "Reading: the cluster-average idle capacity is identical in every row;\n"
        "concentrating the same load on half the machines still slows the job.\n"
    )
    return most_skewed


def policy_race(scenario: ScenarioSpec) -> None:
    task_demand = JOB_DEMAND / WORKSTATIONS
    print("== scheduling policies on the most skewed cluster (event-driven) ==")
    baseline = None
    for policy in POLICY_NAMES:
        kwargs = {"chunks_per_station": 8} if policy == "self-scheduling" else None
        config = SimulationConfig.from_scenario(
            scenario.with_policy(policy, kwargs),
            task_demand=task_demand,
            num_jobs=400,
            seed=11,
        )
        mean = run_simulation(config, "event-driven").mean_job_time
        if baseline is None:
            baseline = mean
        print(
            f"{policy:>26}: E_j = {mean:8.2f}"
            f"  ({1.0 - mean / baseline:+.1%} vs static)"
        )
    print(
        "\nReading: with half the machines idle, migrating or re-queueing work\n"
        "around arriving owners recovers part of the static policy's loss."
    )


def main() -> None:
    most_skewed = concentration_study()
    policy_race(most_skewed)


if __name__ == "__main__":
    main()
