"""PVM-substrate demo: measure a non-dedicated cluster the way the paper did.

This example mirrors the paper's Section-4 experimental methodology end to end
on the simulated substrate:

1. survey the owners' utilization (the paper used `uptime` over two days; we
   survey synthetic "trivial usage" traces calibrated to ~3%),
2. run the PVM local-computation program over 1..12 workstations for several
   problem sizes, recording the maximum task execution time,
3. compare the measured times and speedups with the analytical model, and
4. try the dynamic self-scheduling variant to see how a work queue softens
   the impact of owner interference.

Run with:  python examples/pvm_cluster_demo.py
"""

import numpy as np

from repro.core import JobSpec, OwnerSpec, SystemSpec, evaluate
from repro.pvm import VirtualMachine, run_local_computation, run_self_scheduling
from repro.workload import (
    LocalComputationProblem,
    trivial_usage_behavior,
    uptime_survey,
)

WORKSTATION_COUNTS = (1, 2, 4, 8, 12)
PROBLEM_MINUTES = (1.0, 4.0, 16.0)
REPLICATIONS = 5
TARGET_UTILIZATION = 0.03


def survey_owners() -> float:
    behavior = trivial_usage_behavior(TARGET_UTILIZATION)
    survey = uptime_survey(behavior, horizon=200_000.0, num_workstations=12, seed=2)
    print("== owner utilization survey (simulated uptime) ==")
    print(
        f"mean {survey['mean']:.3f}, min {survey['min']:.3f}, max {survey['max']:.3f} "
        f"over {int(survey['workstations'])} workstations"
    )
    print()
    return survey["mean"]


def run_validation(measured_utilization: float) -> None:
    owner = OwnerSpec(demand=10.0, utilization=measured_utilization)
    print("== max task execution time: measured (PVM substrate) vs analytic ==")
    print(f"{'demand':>8} {'W':>4} {'measured':>10} {'analytic':>10} {'speedup':>8}")
    for minutes in PROBLEM_MINUTES:
        problem = LocalComputationProblem(minutes=minutes)
        base_time = None
        for workstations in WORKSTATION_COUNTS:
            times = []
            for replication in range(REPLICATIONS):
                vm = VirtualMachine(
                    num_hosts=workstations, owner=owner,
                    seed=1000 * workstations + replication,
                )
                result = run_local_computation(vm, problem.total_demand_units)
                times.append(result.max_task_time)
            measured = float(np.mean(times))
            if base_time is None:
                base_time = measured
            analytic = evaluate(
                problem.job_spec(), SystemSpec(workstations=workstations, owner=owner)
            ).expected_job_time
            print(
                f"{problem.name:>8} {workstations:>4} {measured:>10.1f} "
                f"{analytic:>10.1f} {base_time / measured:>8.2f}"
            )
        print()


def compare_scheduling(measured_utilization: float) -> None:
    # Crank up the interference to make the difference visible.
    owner = OwnerSpec(demand=10.0, utilization=0.20)
    job_demand = 2400.0
    workstations = 8
    static_times, dynamic_times = [], []
    for replication in range(REPLICATIONS):
        vm_static = VirtualMachine(num_hosts=workstations, owner=owner, seed=50 + replication)
        static_times.append(run_local_computation(vm_static, job_demand).max_task_time)
        vm_dynamic = VirtualMachine(num_hosts=workstations, owner=owner, seed=150 + replication)
        dynamic_times.append(
            run_self_scheduling(vm_dynamic, job_demand, chunks_per_worker=8).makespan
        )
    print("== static partitioning vs dynamic self-scheduling (U = 20%) ==")
    print(f"static one-task-per-node : {np.mean(static_times):8.1f} units")
    print(f"dynamic work queue       : {np.mean(dynamic_times):8.1f} units")
    improvement = 1.0 - np.mean(dynamic_times) / np.mean(static_times)
    print(f"improvement              : {improvement:8.1%}")


def main() -> None:
    measured = survey_owners()
    run_validation(measured)
    compare_scheduling(measured)


if __name__ == "__main__":
    main()
