"""Feasibility study: how big must jobs be on *your* cluster?

Reproduces the paper's headline analysis (Figures 7-8 and the Section-5
thresholds) for a user-configurable cluster, answering two questions:

* for each owner utilization, what task ratio (and hence job size) is needed
  to harvest at least 80% of the idle cycles, and
* how does that requirement grow with the size of the cluster?

Run with:  python examples/feasibility_study.py
"""

import numpy as np

from repro.core import OwnerSpec, feasibility_frontier, weighted_efficiency_at_task_ratio

OWNER_DEMAND = 10.0
UTILIZATIONS = (0.01, 0.05, 0.10, 0.20)
SYSTEM_SIZES = (8, 20, 60, 100)
TARGET = 0.80


def frontier_table() -> None:
    print(f"Minimum task ratio for {TARGET:.0%} weighted efficiency")
    header = "workstations " + "".join(f"  U={u:<5g}" for u in UTILIZATIONS)
    print(header)
    for workstations in SYSTEM_SIZES:
        frontier = feasibility_frontier(
            UTILIZATIONS, workstations=workstations, owner_demand=OWNER_DEMAND,
            target_weighted_efficiency=TARGET,
        )
        row = f"{workstations:>12} " + "".join(
            f"  {frontier[u]:>6.0f}" for u in UTILIZATIONS
        )
        print(row)
    print()
    print(
        "Reading: on a 60-node cluster at 10% owner utilization each task must\n"
        "be >= ~13x the mean owner demand (the paper's Section-5 threshold)."
    )
    print()


def efficiency_curves(workstations: int = 60) -> None:
    ratios = np.arange(1, 41)
    print(f"Weighted efficiency vs task ratio, W = {workstations}")
    print("ratio " + "".join(f"  U={u:<5g}" for u in UTILIZATIONS))
    for ratio in (1, 2, 4, 8, 13, 20, 30, 40):
        owner_cols = []
        for utilization in UTILIZATIONS:
            owner = OwnerSpec(demand=OWNER_DEMAND, utilization=utilization)
            value = weighted_efficiency_at_task_ratio(float(ratio), workstations, owner)
            owner_cols.append(f"  {value:>7.3f}")
        print(f"{ratio:>5} " + "".join(owner_cols))
    print()


def job_sizing(workstations: int = 60) -> None:
    print(f"Job sizing for a {workstations}-node cluster (owner demand {OWNER_DEMAND:g} units)")
    for utilization in UTILIZATIONS:
        owner = OwnerSpec(demand=OWNER_DEMAND, utilization=utilization)
        frontier = feasibility_frontier(
            [utilization], workstations=workstations, owner_demand=OWNER_DEMAND,
            target_weighted_efficiency=TARGET,
        )
        ratio = frontier[utilization]
        job_demand = ratio * OWNER_DEMAND * workstations
        print(
            f"  U={utilization:>4.0%}: task ratio >= {ratio:>4.0f}  "
            f"=> total job demand >= {job_demand:>8,.0f} units"
        )


def main() -> None:
    frontier_table()
    efficiency_curves()
    job_sizing()


if __name__ == "__main__":
    main()
